"""``python -m repro`` — the command-line face of the facade.

Four subcommands, all built on :mod:`repro.api`:

* ``run`` — one spec through the pipeline; ``--json -`` streams the
  :class:`RunResult` to stdout (human summary goes to stderr).
  Exit code 0 iff the error was detected and the fix verified.
* ``campaign`` — a spec matrix (designs x strategies x engines x error
  seeds x seeds) through :class:`CampaignRunner`; writes a results
  JSON that ``report`` re-loads.
* ``bench`` — the same campaign under both engines, asserting
  bit-identical trajectories and reporting the speedup.
* ``report`` — pretty-print a results file written by ``run`` or
  ``campaign``, a ``.jsonl`` journal, or a whole directory of either.
* ``cache verify`` — damage report for a persisted tile-config store
  (exit 1 when corrupt or quarantined entries exist).
* ``serve`` / ``client`` — the warm-start debug service: a daemon
  owning resident worker processes (:mod:`repro.service`) and the
  client verbs (``submit``, ``submit-batch``, ``status``, ``result``,
  ``events``, ``stats``, ``shutdown``) that talk to it over its unix
  socket.

``--cache-dir DIR`` persists the tile-configuration cache across
invocations, so a repeated run starts warm and replays precomputed
configurations instead of re-running place-and-route.

``campaign --executor process`` runs each spec in a supervised child
process (hard wall-clock kills, crash isolation); ``--journal FILE``
plus ``--resume`` restarts an interrupted campaign from where it died.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro._version import __version__
from repro.api.campaign import (
    EXECUTORS,
    CampaignResult,
    CampaignRunner,
    expand_matrix,
)
from repro.api.pipeline import PipelineHooks, run_spec
from repro.api.result import RunResult
from repro.api.spec import (
    CACHE_POLICIES,
    CORRECTION_MODES,
    ENGINE_NAMES,
    RunSpec,
    VERIFY_MODES,
)
from repro.debug.errors import ERROR_KINDS
from repro.debug.strategies import STRATEGY_REGISTRY
from repro.errors import ReproError
from repro.pnr.effort import EFFORT_PRESETS


class _ProgressHooks(PipelineHooks):
    """``--verbose``: stage and probe progress on stderr."""

    def on_stage_start(self, stage, ctx) -> None:
        print(f"[{ctx.packed.netlist.name}] {stage.name}...",
              file=sys.stderr)

    def on_stage_end(self, stage, ctx, seconds) -> None:
        print(f"[{ctx.packed.netlist.name}] {stage.name} done "
              f"({seconds:.2f}s)", file=sys.stderr)

    def on_probe(self, ctx, step) -> None:
        print(
            f"  probe {step.probe_instance}: "
            f"{'mismatch' if step.mismatch else 'match'}, "
            f"{step.candidates_before} -> {step.candidates_after} "
            "candidates",
            file=sys.stderr,
        )


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags that override RunSpec fields (None = keep spec default)."""
    g = parser.add_argument_group("run spec")
    g.add_argument("--spec", metavar="FILE",
                   help="base RunSpec JSON file; flags override it")
    g.add_argument("--design", help="registry design name")
    g.add_argument("--design-seed", type=int, dest="design_seed")
    g.add_argument("--blif", dest="blif_path", metavar="FILE",
                   help="debug a BLIF netlist instead of a registry design")
    g.add_argument("--device", help="XC4000 family member (default: auto)")
    g.add_argument("--strategy", choices=sorted(STRATEGY_REGISTRY))
    g.add_argument("--preset", choices=list(EFFORT_PRESETS))
    g.add_argument("--engine", choices=list(ENGINE_NAMES))
    g.add_argument("--seed", type=int)
    g.add_argument("--error-kind", dest="error_kind",
                   choices=list(ERROR_KINDS))
    g.add_argument("--error-seed", type=int, dest="error_seed")
    g.add_argument("--n-errors", type=int, dest="n_errors",
                   help="inject this many simultaneous errors "
                        "(distinct instances)")
    g.add_argument("--error-kinds-list", dest="error_kinds_list",
                   metavar="K1,K2,...",
                   help="comma-separated per-error kinds "
                        "(length must match --n-errors)")
    g.add_argument("--max-rounds", type=int, dest="max_rounds",
                   help="diagnose->fix->re-detect round budget "
                        "(default: one round per error)")
    g.add_argument("--max-probes", type=int, dest="max_probes")
    g.add_argument("--goal-size", type=int, dest="goal_size")
    g.add_argument("--n-patterns", type=int, dest="n_patterns")
    g.add_argument("--n-cycles", type=int, dest="n_cycles")
    g.add_argument("--verify", choices=list(VERIFY_MODES),
                   help="fix verification: stimulus replay, bounded "
                        "SAT proof, or both")
    g.add_argument("--prove-frames", type=int, dest="prove_frames",
                   help="proof unrolling depth (default: n-cycles)")
    g.add_argument("--correction", choices=list(CORRECTION_MODES),
                   help="fix synthesis: back-annotation or CEGIS")
    g.add_argument("--n-tiles", type=int, dest="n_tiles",
                   help="tiling granularity (TilingOptions.n_tiles)")
    g.add_argument("--cache", choices=list(CACHE_POLICIES))
    g.add_argument("--cache-dir", dest="cache_dir", metavar="DIR",
                   help="persist the tile-config cache across invocations")
    r = parser.add_argument_group("resilience")
    r.add_argument("--timeout", type=float, dest="timeout_s",
                   metavar="SECONDS",
                   help="per-run wall-clock deadline; an expired run "
                        "ends with status 'timeout' and partial results")
    r.add_argument("--stage-timeout", action="append",
                   dest="stage_timeout", metavar="STAGE=SECONDS",
                   help="per-stage deadline (repeatable), e.g. "
                        "--stage-timeout localize=5")
    r.add_argument("--retries", type=int,
                   help="re-attempts after a failed (not timed-out) "
                        "attempt, stepping down the degradation ladder")
    r.add_argument("--chaos", metavar="JSON",
                   help="deterministic fault injection: a ChaosConfig "
                        "JSON object or fault list "
                        '(e.g. \'{"faults":[{"kind":"exception",'
                        '"stage":"localize"}]}\')')


_SPEC_FLAGS = (
    "design", "design_seed", "blif_path", "device", "strategy", "preset",
    "engine", "seed", "error_kind", "error_seed", "n_errors", "max_rounds",
    "max_probes", "goal_size", "n_patterns", "n_cycles", "verify",
    "prove_frames", "correction", "cache", "cache_dir", "timeout_s",
    "retries",
)


def _spec_from_args(args: argparse.Namespace) -> RunSpec:
    if args.spec:
        with open(args.spec) as fh:
            spec = RunSpec.from_dict(json.load(fh))
    else:
        spec = RunSpec()
    overrides = {
        name: getattr(args, name)
        for name in _SPEC_FLAGS
        if getattr(args, name, None) is not None
    }
    if getattr(args, "n_tiles", None) is not None:
        tiling = dict(spec.tiling or {})
        tiling["n_tiles"] = args.n_tiles
        overrides["tiling"] = tiling
    kinds = _parse_csv(getattr(args, "error_kinds_list", None))
    if kinds is not None:
        overrides["error_kinds"] = kinds
        # the kind list implies the error count unless given explicitly
        overrides.setdefault("n_errors", len(kinds))
    stage_timeouts = _parse_stage_timeouts(
        getattr(args, "stage_timeout", None))
    if stage_timeouts is not None:
        overrides["stage_timeouts"] = stage_timeouts
    chaos_text = getattr(args, "chaos", None)
    if chaos_text is not None:
        try:
            overrides["chaos"] = json.loads(chaos_text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"--chaos is not valid JSON: {exc}") from exc
    return spec.replaced(**overrides) if overrides else spec


def _parse_stage_timeouts(pairs: list | None) -> dict | None:
    if not pairs:
        return None
    timeouts: dict = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name.strip():
            raise ValueError(
                f"--stage-timeout wants STAGE=SECONDS, got {pair!r}")
        try:
            timeouts[name.strip()] = float(value)
        except ValueError:
            raise ValueError(
                f"--stage-timeout seconds must be a number, got {pair!r}"
            ) from None
    return timeouts


def _parse_csv(text: str | None, convert=str) -> list | None:
    if text is None:
        return None
    values = [convert(v.strip()) for v in text.split(",") if v.strip()]
    return values or None


def _summary_line(result: RunResult) -> str:
    line = (
        f"{result.design:<10} {result.strategy:<12} {result.engine:<12} "
        f"err={result.error_kind}@{result.error_instance:<14} "
        f"detected={str(result.detected):<5} "
        f"localized={str(result.localized):<5} "
        f"fixed={str(result.fixed):<5} "
    )
    if result.status != "ok":
        line += f"status={result.status:<8} "
    if result.proved is not None:
        line += f"proved={str(result.proved):<5} "
    if result.n_errors_injected > 1:
        line += (
            f"errors={len(result.errors_found)}/"
            f"{result.n_errors_injected} rounds={result.n_rounds:<2} "
        )
    line += (
        f"probes={result.n_probes:<3} commits={result.n_commits:<3} "
        f"cache_hits={result.n_commit_cache_hits:<3} "
        f"{result.wall_seconds:7.2f}s"
    )
    return line


def _emit_json(payload: dict, target: str) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    if target == "-":
        print(text)
    else:
        with open(target, "w") as fh:
            fh.write(text + "\n")


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------

def cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    hooks = _ProgressHooks() if args.verbose else None
    tracer = None
    if args.trace:
        from repro.obs.trace import Tracer

        tracer = Tracer()
    result = run_spec(spec, hooks=hooks, tracer=tracer,
                      profile=args.profile)
    stdout_busy = args.json == "-" or args.trace == "-"
    info = sys.stderr if stdout_busy else sys.stdout
    print(_summary_line(result), file=info)
    for note in result.notes:
        print(f"  note: {note}", file=info)
    if tracer is not None:
        tracer.write_chrome_trace(args.trace)
        if args.trace != "-":
            print(f"wrote trace {args.trace} "
                  "(chrome://tracing / Perfetto; 'report' renders the "
                  "span tree)", file=info)
    if args.json:
        _emit_json(result.to_dict(), args.json)
    return 0 if (result.detected and result.fixed) else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    base = _spec_from_args(args)
    specs = expand_matrix(
        base,
        designs=_parse_csv(args.designs),
        strategies=_parse_csv(args.strategies),
        engines=_parse_csv(args.engines),
        error_kinds=_parse_csv(args.error_kinds),
        error_seeds=_parse_csv(args.error_seeds, int),
        seeds=_parse_csv(args.seeds, int),
    )
    hooks = _ProgressHooks() if args.verbose else None
    if hooks is not None and args.executor == "process":
        # stage hooks cannot observe across a process boundary
        print("note: --verbose stage hooks are unavailable with "
              "--executor process", file=sys.stderr)
        hooks = None
    runner = CampaignRunner(workers=args.workers, hooks=hooks,
                            cache_dir=base.cache_dir,
                            on_error=args.on_error,
                            executor=args.executor,
                            hard_timeout_s=args.hard_timeout_s,
                            journal=args.journal,
                            resume=args.resume)
    campaign = runner.run(specs)
    info = sys.stderr if args.out == "-" else sys.stdout
    for result in campaign.results:
        print(_summary_line(result), file=info)
    print(campaign.summary_line(), file=info)
    for note in campaign.notes:
        print(f"  note: {note}", file=info)
    if campaign.cache is not None:
        print(
            "tile cache: {hits:.0f} hits / {misses:.0f} misses "
            "(hit rate {hit_rate:.2f})".format(**campaign.cache),
            file=info,
        )
    if args.out:
        _emit_json(campaign.to_dict(), args.out)
        if args.out != "-":
            print(f"wrote {args.out}", file=info)
    if campaign.aborted or campaign.interrupted:
        return 1
    return 0 if campaign.n_runs else 1


def cmd_cache_verify(args: argparse.Namespace) -> int:
    import os

    from repro.tiling.cache import (
        CACHE_STORE_NAME,
        verify_cache_file,
        verify_cache_store,
    )

    path = args.path
    if not os.path.exists(path):
        print(f"{path}: nothing to verify (no such path)")
        return 0
    if os.path.isdir(path):
        # a --cache-dir (holding the store) or the store dir itself
        if os.path.basename(path.rstrip("/")) == CACHE_STORE_NAME:
            path = os.path.dirname(path.rstrip("/")) or "."
        report = verify_cache_store(path)
        print(
            f"{args.path}: {report['valid']} valid entr"
            f"{'y' if report['valid'] == 1 else 'ies'}, "
            f"{len(report['corrupt'])} corrupt, "
            f"{len(report['quarantined'])} quarantined, "
            f"{report['legacy_entries']} legacy"
        )
        for kind in ("corrupt", "quarantined"):
            for entry in report[kind]:
                print(f"  {kind}: {entry}")
        return 1 if (report["corrupt"] or report["quarantined"]) else 0
    n = verify_cache_file(path)
    print(f"{path}: {n} valid entr{'y' if n == 1 else 'ies'}")
    return 0 if n else 1


#: bench reference engine: every other engine's speedup is against it
_BENCH_BASELINE = "interpreted"


def cmd_bench(args: argparse.Namespace) -> int:
    """Every engine over the same matrix; assert bit-identity, report.

    Columns are derived from ``ENGINE_NAMES`` — a new engine shows up
    here (``<engine>_seconds`` / ``<engine>_speedup`` vs the
    interpreted baseline) without any CLI edits.
    """
    base = _spec_from_args(args)
    designs = _parse_csv(args.designs) or [base.design]
    rows = []
    ok = True
    for design in designs:
        per_engine: dict[str, RunResult] = {}
        for engine in ENGINE_NAMES:
            spec = base.replaced(design=design, engine=engine)
            per_engine[engine] = run_spec(spec)
        ref = per_engine[_BENCH_BASELINE]
        identical = all(
            r.trajectory_key() == ref.trajectory_key()
            and r.candidates == ref.candidates
            for r in per_engine.values()
        )
        ok = ok and identical
        loc_base = ref.localization_seconds
        row = {
            "design": design,
            "identical_results": identical,
            "n_probes": ref.n_probes,
        }
        parts = []
        for engine in ENGINE_NAMES:
            loc = per_engine[engine].localization_seconds
            row[f"{engine}_seconds"] = round(loc, 6)
            if engine == _BENCH_BASELINE:
                parts.append(f"{engine} {loc:.3f}s")
            else:
                speedup = loc_base / loc if loc > 0 else float("inf")
                row[f"{engine}_speedup"] = round(speedup, 3)
                parts.append(f"{engine} {loc:.3f}s ({speedup:.1f}x)")
        rows.append(row)
        print(
            f"{design:<10} localization {' | '.join(parts)} "
            f"over {ref.n_probes} probes, identical={identical}",
            file=sys.stderr if args.json == "-" else sys.stdout,
        )
    if args.json:
        _emit_json({"rows": rows, "identical_all": ok}, args.json)
    return 0 if ok else 1


def _load_report_file(path: str) -> tuple[list, "CampaignResult | None"]:
    """Results (and the campaign, if it is one) from one saved file.

    Three shapes are understood: a ``RunResult`` JSON, a
    ``CampaignResult`` JSON, and an append-only ``.jsonl`` journal as
    written by ``campaign --journal`` or the service spool (later
    entries win, torn tails skipped).
    """
    if path.endswith(".jsonl"):
        from repro.api.journal import CampaignJournal

        entries = CampaignJournal(path).load()
        return [RunResult.from_dict(d) for d in entries.values()], None
    with open(path) as fh:
        data = json.load(fh)
    if "results" in data:
        campaign = CampaignResult.from_dict(data)
        return campaign.results, campaign
    return [RunResult.from_dict(data)], None


def _report_sources(target: str) -> list[str]:
    """The files one ``report`` invocation covers (a file, or a
    directory of ``.json``/``.jsonl`` result files)."""
    import os

    if not os.path.isdir(target):
        return [target]
    files = sorted(
        os.path.join(target, name)
        for name in os.listdir(target)
        if name.endswith((".json", ".jsonl"))
    )
    if not files:
        raise ValueError(
            f"{target}: no .json or .jsonl result files to report"
        )
    return files


def _report_trace(path: str) -> bool:
    """Render a Chrome trace file as a span tree; False if not one."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return False
    if not isinstance(data, dict) or "traceEvents" not in data:
        return False
    from repro.obs.trace import render_chrome_tree

    print(render_chrome_tree(data))
    profile = (data.get("otherData") or {}).get("profile")
    if profile:
        print()
        _print_profile(profile)
    return True


def _print_profile(profile: dict) -> None:
    print(f"stage profile ({profile.get('profiler', '?')}, top "
          "functions by self time):")
    for stage, rows in (profile.get("stages") or {}).items():
        print(f"  {stage}:")
        for row in rows[:5]:
            print(f"    {row['tottime_s']:8.4f}s self "
                  f"{row['cumtime_s']:8.4f}s cum "
                  f"{row['ncalls']:>8}x  {row['func']}")


def _print_timings(results: list) -> None:
    """Per-stage latency distribution across many results.

    Built from the same :class:`~repro.obs.metrics.Histogram` the
    metrics registry uses, so ``report --timings`` and a scrape of
    ``repro_stage_seconds`` agree on quantile semantics.
    """
    from repro.obs.metrics import Histogram

    stages: dict[str, Histogram] = {}
    for r in results:
        for stage, seconds in (r.timings.get("stages") or {}).items():
            stages.setdefault(stage, Histogram()).observe(seconds)
    if not stages:
        print("no per-stage timings recorded in these results")
        return
    header = (f"{'stage':<12} {'runs':>5} {'p50 s':>9} {'p95 s':>9} "
              f"{'max s':>9} {'total s':>9}")
    print(header)
    print("-" * len(header))
    for stage, hist in stages.items():
        print(
            f"{stage:<12} {hist.count:>5} {hist.quantile(0.5):>9.3f} "
            f"{hist.quantile(0.95):>9.3f} {hist.max:>9.3f} "
            f"{hist.total:>9.3f}"
        )


def cmd_report(args: argparse.Namespace) -> int:
    results: list = []
    campaigns: list = []
    sources = _report_sources(args.file)
    if len(sources) == 1 and _report_trace(sources[0]):
        return 0
    for path in sources:
        try:
            file_results, campaign = _load_report_file(path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"  skipping {path}: {exc}", file=sys.stderr)
            continue
        results.extend(file_results)
        if campaign is not None:
            campaigns.append(campaign)
    header = (
        f"{'design':<10} {'strategy':<12} {'engine':<12} "
        f"{'error':<24} {'det':<5} {'loc':<5} {'fix':<5} "
        f"{'probes':>6} {'commits':>7} {'work units':>11} {'wall s':>8}"
    )
    print(header)
    print("-" * len(header))
    for r in results:
        work = r.effort.get("debug", {}).get("work_units", 0.0)
        print(
            f"{r.design:<10} {r.strategy:<12} {r.engine:<12} "
            f"{r.error_kind + '@' + r.error_instance:<24} "
            f"{str(r.detected):<5} {str(r.localized):<5} "
            f"{str(r.fixed):<5} {r.n_probes:>6} {r.n_commits:>7} "
            f"{work:>11.0f} {r.wall_seconds:>8.2f}"
        )
    print()
    for campaign in campaigns:
        print(campaign.summary_line())
        if campaign.cache is not None:
            print(
                "tile cache: {hits:.0f} hits / {misses:.0f} misses "
                "(hit rate {hit_rate:.2f})".format(**campaign.cache)
            )
    if args.timings:
        _print_timings(results)
    elif len(sources) > 1 or not campaigns:
        detected = sum(1 for r in results if r.detected)
        localized = sum(1 for r in results if r.localized)
        fixed = sum(1 for r in results if r.fixed)
        print(
            f"{len(results)} result{'s' if len(results) != 1 else ''}, "
            f"{detected} detected, {localized} localized, {fixed} fixed "
            f"across {len(sources)} file{'s' if len(sources) != 1 else ''}"
        )
    return 0 if results else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.daemon import (
        ServiceConfig,
        default_socket_path,
        serve,
    )

    overrides = {}
    if args.heartbeat_interval is not None:
        overrides["heartbeat_interval_s"] = args.heartbeat_interval
    if args.heartbeat_grace is not None:
        overrides["heartbeat_timeout_s"] = args.heartbeat_grace
    config = ServiceConfig(
        socket_path=args.socket or default_socket_path(args.cache_dir),
        cache_dir=args.cache_dir,
        workers=args.workers,
        spool_dir=args.spool_dir,
        hard_timeout_s=args.hard_timeout_s,
        warm_max_entries=args.warm_entries,
        max_requeues=args.max_requeues,
        **overrides,
    )
    return serve(config)


def _client(args: argparse.Namespace):
    from repro.service.client import Client
    from repro.service.daemon import default_socket_path

    return Client(args.socket or default_socket_path())


def _print_result_response(response: dict, args) -> int:
    result = RunResult.from_dict(response["result"])
    info = sys.stderr if getattr(args, "json", None) == "-" else sys.stdout
    print(_summary_line(result), file=info)
    warm = response.get("warm") or {}
    if warm:
        print(
            f"  warm: hit={warm.get('hit')} "
            f"service_seconds={warm.get('service_seconds')}",
            file=info,
        )
    if getattr(args, "json", None):
        _emit_json(response["result"], args.json)
    return 0 if result.status in ("ok", "degraded") else 1


def cmd_client_ping(args: argparse.Namespace) -> int:
    print(json.dumps(_client(args).ping(), sort_keys=True))
    return 0


def cmd_client_submit(args: argparse.Namespace) -> int:
    client = _client(args)
    spec = _spec_from_args(args)
    job = client.submit(spec, priority=args.priority, fresh=args.fresh,
                        trace=args.trace)
    if not args.wait:
        print(json.dumps(job, sort_keys=True))
        return 0
    response = client.wait(job["job"], timeout_s=args.wait_timeout)
    return _print_result_response(response, args)


def cmd_client_submit_batch(args: argparse.Namespace) -> int:
    client = _client(args)
    base = _spec_from_args(args)
    response = client.submit_batch(
        base,
        priority=args.priority,
        fresh=args.fresh,
        designs=_parse_csv(args.designs),
        strategies=_parse_csv(args.strategies),
        engines=_parse_csv(args.engines),
        error_kinds=_parse_csv(args.error_kinds),
        error_seeds=_parse_csv(args.error_seeds, int),
        seeds=_parse_csv(args.seeds, int),
    )
    jobs = response["jobs"]
    if not args.wait:
        print(json.dumps(jobs, sort_keys=True, indent=2))
        return 0
    worst = 0
    for job in jobs:
        settled = client.wait(job["job"], timeout_s=args.wait_timeout)
        worst = max(worst, _print_result_response(settled, args))
    return worst


def cmd_client_status(args: argparse.Namespace) -> int:
    response = _client(args).status(args.job)
    print(json.dumps(response, sort_keys=True, indent=2))
    return 0


def cmd_client_result(args: argparse.Namespace) -> int:
    response = _client(args).result(args.job, timeout_s=args.wait_timeout)
    return _print_result_response(response, args)


def cmd_client_events(args: argparse.Namespace) -> int:
    for event in _client(args).events(args.job):
        print(json.dumps(event, sort_keys=True), flush=True)
    return 0


def cmd_client_stats(args: argparse.Namespace) -> int:
    response = _client(args).stats(metrics=args.metrics)
    if args.metrics:
        # the exposition text alone, scrape-ready for Prometheus
        sys.stdout.write(response.get("metrics_text", ""))
        return 0
    print(json.dumps(response, sort_keys=True, indent=2))
    return 0


def cmd_client_shutdown(args: argparse.Namespace) -> int:
    _client(args).shutdown()
    print("service stopping")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FPGA debug-pipeline facade (detect -> localize -> "
                    "correct -> verify)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="one spec through the pipeline")
    _add_spec_arguments(p_run)
    p_run.add_argument("--json", metavar="PATH|-",
                       help="write the RunResult JSON ('-' = stdout)")
    p_run.add_argument("--trace", metavar="PATH|-",
                       help="record a span trace and write it as Chrome "
                            "trace_event JSON (chrome://tracing, "
                            "Perfetto, or 'report FILE')")
    p_run.add_argument("--profile", action="store_true",
                       help="profile each stage with cProfile; top "
                            "functions land in the result JSON under "
                            "'profile'")
    p_run.add_argument("--verbose", action="store_true")
    p_run.set_defaults(func=cmd_run)

    p_camp = sub.add_parser("campaign",
                            help="a spec matrix through the pipeline")
    _add_spec_arguments(p_camp)
    p_camp.add_argument("--designs", help="comma-separated design names")
    p_camp.add_argument("--strategies", help="comma-separated strategies")
    p_camp.add_argument("--engines", help="comma-separated engines")
    p_camp.add_argument("--error-kinds", dest="error_kinds",
                        help="comma-separated error kinds")
    p_camp.add_argument("--error-seeds", dest="error_seeds",
                        help="comma-separated error seeds")
    p_camp.add_argument("--seeds", help="comma-separated campaign seeds")
    p_camp.add_argument("--workers", type=int, default=1)
    p_camp.add_argument("--executor", choices=list(EXECUTORS),
                        default="thread",
                        help="run in-process threads (default, "
                             "bit-identical to prior releases) or "
                             "supervised child processes (true "
                             "parallelism, hard kills, crash isolation)")
    p_camp.add_argument("--hard-timeout", type=float,
                        dest="hard_timeout_s", metavar="SECONDS",
                        help="process executor: kill a worker outright "
                             "after this many seconds (default: derived "
                             "from --timeout)")
    p_camp.add_argument("--journal", metavar="FILE",
                        help="append each completed run to this JSONL "
                             "journal (enables --resume)")
    p_camp.add_argument("--resume", action="store_true",
                        help="skip specs already completed in --journal "
                             "and execute only the rest")
    p_camp.add_argument("--on-error", dest="on_error",
                        choices=["continue", "abort"], default="continue",
                        help="campaign reaction to a failed run "
                             "(default: continue)")
    p_camp.add_argument("--out", metavar="PATH|-",
                        help="write the campaign results JSON")
    p_camp.add_argument("--verbose", action="store_true")
    p_camp.set_defaults(func=cmd_campaign)

    p_bench = sub.add_parser(
        "bench", help="compare both engines on the same campaign"
    )
    _add_spec_arguments(p_bench)
    p_bench.add_argument("--designs", help="comma-separated design names")
    p_bench.add_argument("--json", metavar="PATH|-")
    p_bench.set_defaults(func=cmd_bench)

    p_rep = sub.add_parser(
        "report",
        help="pretty-print results: a saved JSON, a JSONL journal, or "
             "a directory of either (aggregate summary)",
    )
    p_rep.add_argument(
        "file",
        help="a run/campaign JSON, a .jsonl journal, a directory "
             "of result/journal files (e.g. a campaign spool), or a "
             "Chrome trace written by 'run --trace'",
    )
    p_rep.add_argument(
        "--timings", action="store_true",
        help="per-stage latency distribution (p50/p95/max) across "
             "every result instead of the aggregate tail line",
    )
    p_rep.set_defaults(func=cmd_report)

    p_serve = sub.add_parser(
        "serve", help="run the warm-start debug-service daemon"
    )
    p_serve.add_argument("--socket", metavar="PATH",
                         help="unix socket to listen on (default: "
                              "<cache-dir>/repro-service.sock)")
    p_serve.add_argument("--cache-dir", dest="cache_dir", metavar="DIR",
                         help="tile-config persistence + spool root; "
                              "workers start warm from it")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="resident worker processes (0 = queue "
                              "only; jobs wait for a restart with "
                              "workers)")
    p_serve.add_argument("--spool-dir", dest="spool_dir", metavar="DIR",
                         help="job spool override (default: "
                              "<cache-dir>/service)")
    p_serve.add_argument("--heartbeat-interval", type=float,
                         default=None, metavar="SECONDS",
                         help="worker heartbeat cadence (default 0.25)")
    p_serve.add_argument("--heartbeat-grace", type=float, default=None,
                         metavar="SECONDS",
                         help="event silence before a worker is "
                              "declared wedged and killed (default 15)")
    p_serve.add_argument("--hard-timeout", type=float,
                         dest="hard_timeout_s", metavar="SECONDS",
                         help="per-job hard wall-clock ceiling "
                              "(default: derived from each spec's "
                              "--timeout)")
    p_serve.add_argument("--warm-entries", type=int, default=8,
                         help="warm-registry LRU bound per worker")
    p_serve.add_argument("--max-requeues", type=int, default=1,
                         dest="max_requeues",
                         help="worker deaths tolerated per job before "
                              "it settles as failed")
    p_serve.set_defaults(func=cmd_serve)

    p_client = sub.add_parser(
        "client", help="talk to a running debug-service daemon"
    )
    client_sub = p_client.add_subparsers(dest="client_command",
                                         required=True)

    def _client_parser(name: str, help_text: str):
        p = client_sub.add_parser(name, help=help_text)
        p.add_argument("--socket", metavar="PATH",
                       help="daemon socket (default: "
                            "/tmp/repro-service.sock)")
        return p

    p_c = _client_parser("ping", "liveness check")
    p_c.set_defaults(func=cmd_client_ping)

    p_c = _client_parser("submit", "submit one spec")
    _add_spec_arguments(p_c)
    p_c.add_argument("--priority", type=int, default=0,
                     help="higher runs first (default 0)")
    p_c.add_argument("--fresh", action="store_true",
                     help="re-run even if this spec already has a "
                          "result (dedup override)")
    p_c.add_argument("--trace", action="store_true",
                     help="arm a tracer in the worker; 'client events' "
                          "streams span_start/span_end lines")
    p_c.add_argument("--wait", action="store_true",
                     help="block until the job settles and print the "
                          "result summary")
    p_c.add_argument("--wait-timeout", type=float, default=600.0,
                     dest="wait_timeout", metavar="SECONDS")
    p_c.add_argument("--json", metavar="PATH|-",
                     help="with --wait: write the RunResult JSON")
    p_c.set_defaults(func=cmd_client_submit)

    p_c = _client_parser("submit-batch",
                         "expand a campaign matrix server-side")
    _add_spec_arguments(p_c)
    p_c.add_argument("--designs", help="comma-separated design names")
    p_c.add_argument("--strategies", help="comma-separated strategies")
    p_c.add_argument("--engines", help="comma-separated engines")
    p_c.add_argument("--error-kinds", dest="error_kinds",
                     help="comma-separated error kinds")
    p_c.add_argument("--error-seeds", dest="error_seeds",
                     help="comma-separated error seeds")
    p_c.add_argument("--seeds", help="comma-separated campaign seeds")
    p_c.add_argument("--priority", type=int, default=0)
    p_c.add_argument("--fresh", action="store_true")
    p_c.add_argument("--wait", action="store_true",
                     help="block until every job settles")
    p_c.add_argument("--wait-timeout", type=float, default=600.0,
                     dest="wait_timeout", metavar="SECONDS")
    p_c.add_argument("--json", metavar="PATH|-",
                     help="with --wait: write each RunResult JSON")
    p_c.set_defaults(func=cmd_client_submit_batch)

    p_c = _client_parser("status", "job state (or the whole queue)")
    p_c.add_argument("job", nargs="?", default=None,
                     help="job digest (omit for all jobs)")
    p_c.set_defaults(func=cmd_client_status)

    p_c = _client_parser("result", "final RunResult of a job")
    p_c.add_argument("job", help="job digest")
    p_c.add_argument("--wait-timeout", type=float, default=None,
                     dest="wait_timeout", metavar="SECONDS",
                     help="block up to this long for an unfinished job")
    p_c.add_argument("--json", metavar="PATH|-")
    p_c.set_defaults(func=cmd_client_result)

    p_c = _client_parser("events", "stream a job's pipeline events")
    p_c.add_argument("job", help="job digest")
    p_c.set_defaults(func=cmd_client_events)

    p_c = _client_parser("stats", "queue depth, warm hits, workers")
    p_c.add_argument("--metrics", action="store_true",
                     help="print the daemon's metrics registry in "
                          "Prometheus text exposition format")
    p_c.set_defaults(func=cmd_client_stats)

    p_c = _client_parser("shutdown", "drain workers and stop the daemon")
    p_c.set_defaults(func=cmd_client_shutdown)

    p_cache = sub.add_parser(
        "cache", help="inspect a persisted tile-config cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_verify = cache_sub.add_parser(
        "verify",
        help="damage report for a --cache-dir, store directory, entry "
             "file, or legacy cache pickle (exit 1 on damage)",
    )
    p_verify.add_argument("path", help="cache directory or file to verify")
    p_verify.set_defaults(func=cmd_cache_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ValueError) as exc:
        # bad spec fields, malformed CSV values, bad worker counts —
        # all user input; fail fast without a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        # anything else is a pipeline bug: report it structurally so
        # scripts driving the CLI can tell "internal error" (3) apart
        # from "bad input" (2) and "run did not fix" (1)
        from repro.resilience.failure import RunFailure

        failure = RunFailure.from_exception(exc, stage="cli")
        print(json.dumps({"error": failure.to_dict()}, sort_keys=True),
              file=sys.stderr)
        return 3
