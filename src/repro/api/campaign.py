"""`CampaignRunner` — fan a list of specs through the pipeline.

A campaign is just N independent pipeline runs: each spec builds its
own design copy, so runs share nothing but the tile configuration
store.  That makes the fan-out embarrassingly parallel and
deterministic: results come back in spec order and every run's
candidates and probe trajectory are independent of worker count and
executor (cache replays are verified bit-identical to the fresh path
before they are applied).

Two executors share the same contract.  ``executor="thread"`` is the
historical in-process fan-out — cheap, GIL-bound, bit-identical to
every prior release.  ``executor="process"`` ships each spec to a
supervised child process (:mod:`repro.resilience.supervisor`): true
parallelism, hard kill-based wall-clock limits, and worker death
(crash, OOM-kill, lost heartbeat, chaos ``worker_kill``) folded into
structured ``status="failed"`` results with stage ``"worker"`` instead
of a dead campaign.  Workers share warm tile configurations through
the crash-safe on-disk store under ``cache_dir``.

A ``journal`` (append-only JSONL, flushed per completed run) plus
``resume=True`` turns an interrupted campaign — SIGINT, OOM, power —
into a restartable one: journaled runs with a completed status are
returned verbatim and only the remainder re-executes.

`expand_matrix` builds the common spec grids (designs x error seeds x
strategies x engines) from one base spec.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.api.journal import CampaignJournal
from repro.api.pipeline import PipelineHooks, resolve_tile_cache, run_spec
from repro.api.result import RunResult
from repro.api.spec import RunSpec
from repro.obs.metrics import METRICS
from repro.tiling.cache import (
    TileConfigCache,
    load_tile_cache,
    save_tile_cache,
    stats_delta,
)


def expand_matrix(
    base: RunSpec,
    designs: list[str] | None = None,
    strategies: list[str] | None = None,
    engines: list[str] | None = None,
    error_kinds: list[str] | None = None,
    error_seeds: list[int] | None = None,
    seeds: list[int] | None = None,
    n_errors: list[int] | None = None,
) -> list[RunSpec]:
    """The cartesian spec grid over the given axes, in a fixed order.

    Axes left as ``None`` — or empty, which a CSV flag like
    ``--designs ""`` produces — keep the base spec's value, so an
    unspecified axis never silently collapses the matrix to zero runs.
    Order is the nesting order of the arguments (designs outermost,
    seeds innermost) so a results file lines up with the grid row by
    row; no axes at all yields the single-spec matrix ``[base]``.
    The ``n_errors`` axis scales the injected fault count (the base
    spec's per-error ``error_kinds`` list, if any, is dropped on those
    specs so the single ``error_kind`` can repeat to any count).
    """
    axes = [
        ("design", designs), ("strategy", strategies),
        ("engine", engines), ("error_kind", error_kinds),
        ("error_seed", error_seeds), ("seed", seeds),
        ("n_errors", n_errors),
    ]
    names = [name for name, values in axes if values]
    pools = [values for _, values in axes if values]
    if not names:
        return [base]
    specs = []
    for combo in itertools.product(*pools):
        overrides = dict(zip(names, combo))
        if "n_errors" in overrides and base.error_kinds is not None:
            # an explicit per-error kind list pins the count; clear it
            # so the axis can scale freely off the single error_kind
            overrides.setdefault("error_kinds", None)
        specs.append(base.replaced(**overrides))
    return specs


@dataclass
class CampaignResult:
    """Ordered run results plus campaign-level aggregates."""

    results: list = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    #: aggregate tile-cache counters at campaign end (None if disabled)
    cache: dict | None = None
    #: campaign-level events (chaos cache corruption, abort reason,
    #: write-back trouble) — mirrors ``RunResult.notes``
    notes: list = field(default_factory=list)
    #: ``on_error="abort"`` stopped the campaign before every spec ran
    aborted: bool = False
    #: SIGINT/stop cut the campaign short (results so far are kept;
    #: a journaled campaign resumes from here with ``--resume``)
    interrupted: bool = False
    #: executor that produced these results ("thread" | "process")
    executor: str = "thread"

    @property
    def n_runs(self) -> int:
        return len(self.results)

    @property
    def n_detected(self) -> int:
        return sum(1 for r in self.results if r.detected)

    @property
    def n_localized(self) -> int:
        return sum(1 for r in self.results if r.localized)

    @property
    def n_fixed(self) -> int:
        return sum(1 for r in self.results if r.fixed)

    @property
    def n_failed(self) -> int:
        """Runs that ended ``failed`` or ``timeout`` (isolated, kept)."""
        return sum(
            1 for r in self.results if r.status in ("failed", "timeout")
        )

    @property
    def n_degraded(self) -> int:
        return sum(1 for r in self.results if r.status == "degraded")

    @property
    def failures(self) -> list:
        """Flat failure view: one record per failed/timed-out run."""
        out = []
        for index, r in enumerate(self.results):
            if r.status in ("failed", "timeout"):
                out.append({
                    "index": index,
                    "design": r.design,
                    "status": r.status,
                    "failures": list(r.failures),
                })
        return out

    def summary_line(self) -> str:
        """The one-line aggregate summary, shared verbatim by the
        ``campaign`` and ``report`` CLI outputs so executor and worker
        count always print consistently."""
        line = (
            f"{self.n_runs} runs, {self.n_detected} detected, "
            f"{self.n_localized} localized, {self.n_fixed} fixed"
        )
        if self.n_failed or self.n_degraded:
            line += (
                f", {self.n_failed} failed, {self.n_degraded} degraded"
            )
        line += (
            f" ({self.wall_seconds:.1f}s, {self.executor} executor, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''})"
        )
        return line

    def to_dict(self) -> dict:
        return {
            "n_runs": self.n_runs,
            "n_detected": self.n_detected,
            "n_localized": self.n_localized,
            "n_fixed": self.n_fixed,
            "n_failed": self.n_failed,
            "n_degraded": self.n_degraded,
            "failures": self.failures,
            "wall_seconds": round(self.wall_seconds, 6),
            "workers": self.workers,
            "cache": self.cache,
            "notes": list(self.notes),
            "aborted": self.aborted,
            "interrupted": self.interrupted,
            "executor": self.executor,
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        return cls(
            results=[RunResult.from_dict(r) for r in data.get("results", [])],
            wall_seconds=data.get("wall_seconds", 0.0),
            workers=data.get("workers", 1),
            cache=data.get("cache"),
            notes=list(data.get("notes", [])),
            aborted=data.get("aborted", False),
            interrupted=data.get("interrupted", False),
            executor=data.get("executor", "thread"),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "CampaignResult":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


#: campaign policies when a run ends ``failed``/``timeout``
ON_ERROR_POLICIES = ("continue", "abort")

#: how campaign runs execute: in-process threads (historical default,
#: bit-identical) or supervised child processes (true parallelism,
#: hard kills, crash isolation)
EXECUTORS = ("thread", "process")


class CampaignRunner:
    """Runs a list of specs, optionally across worker threads or
    supervised worker processes.

    ``executor="thread"`` (default) keeps the historical in-process
    fan-out, bit-identical to prior releases.  ``executor="process"``
    spawns one supervised child per run
    (:func:`repro.resilience.supervisor.run_supervised`): the
    supervisor kills children that blow a hard wall-clock ceiling or
    stop heartbeating, and any worker death becomes a structured
    ``failed`` result with stage ``"worker"`` — subject to the same
    ``on_error`` policy as in-process failures.  Process workers share
    warm tile configurations through the on-disk store under
    ``cache_dir`` (each worker merges on load and writes back its new
    entries atomically).

    A ``journal`` records every completed run as one flushed JSONL
    line; with ``resume=True`` the runner first loads it and skips
    specs whose digest already finished (``ok``/``degraded``),
    re-executing only the rest — failed, timed-out, and never-started
    runs.

    Cache policy is honored per spec: ``"shared"`` runs use the
    process-wide default cache, ``"private"`` runs share one
    campaign-local cache (isolated from the rest of the process, but
    warm across the campaign's own runs), and ``"off"`` runs get none.
    Each cache in play is warmed from ``cache_dir`` once up front and
    written back once at the end — inside a ``try/finally``, so a run
    that dies can no longer skip persisting the warm entries completed
    runs accumulated; ``CampaignResult.cache`` reports the counter
    delta over the whole campaign.

    Failures are *isolated*: a run that raises (or exhausts its
    retries) becomes a structured ``status="failed"`` result in spec
    order and the campaign keeps going.  ``on_error="abort"`` instead
    stops scheduling after the first failed run (results completed so
    far are kept, the write-back still happens, and
    ``CampaignResult.aborted`` flags the early stop).
    """

    def __init__(
        self,
        workers: int = 1,
        hooks: PipelineHooks | None = None,
        tile_cache: TileConfigCache | None = None,
        cache_dir: str | None = None,
        on_error: str = "continue",
        executor: str = "thread",
        hard_timeout_s: float | None = None,
        journal: CampaignJournal | str | None = None,
        resume: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, "
                f"got {on_error!r}"
            )
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if executor == "process" and hooks is not None:
            raise ValueError(
                "hooks observe in-process pipeline stages and cannot "
                "cross a process boundary; use executor='thread' or "
                "drop the hooks"
            )
        if isinstance(journal, str):
            journal = CampaignJournal(journal)
        if resume and journal is None:
            raise ValueError("resume=True requires a journal")
        self.workers = workers
        self.hooks = hooks
        self.cache_dir = cache_dir
        self.on_error = on_error
        self.executor = executor
        #: hard wall-clock kill ceiling per process-executor run
        #: (``None`` derives it from each spec's ``timeout_s``)
        self.hard_timeout_s = hard_timeout_s
        self.journal = journal
        self.resume = resume
        #: caller-supplied override: used for every cache-enabled run
        self.tile_cache = tile_cache
        self._override_loaded = False
        self._policy_caches: dict[str, TileConfigCache] = {}
        #: signals in-flight supervised workers to die on interrupt
        self._stop = threading.Event()

    def _cache_for(self, spec: RunSpec) -> TileConfigCache | None:
        if spec.cache == "off":
            return None
        if self.tile_cache is not None:
            if self.cache_dir is not None and not self._override_loaded:
                load_tile_cache(self.cache_dir, self.tile_cache)
                self._override_loaded = True
            return self.tile_cache
        cache = self._policy_caches.get(spec.cache)
        if cache is None:
            cache = (
                TileConfigCache() if spec.cache == "private"
                else resolve_tile_cache(spec)
            )
            if self.cache_dir is not None:
                load_tile_cache(self.cache_dir, cache)
            self._policy_caches[spec.cache] = cache
        return cache

    def _campaign_caches(self) -> list[TileConfigCache]:
        """Distinct caches in play, in first-use order."""
        caches: list[TileConfigCache] = []
        if self.tile_cache is not None:
            caches.append(self.tile_cache)
        for cache in self._policy_caches.values():
            if all(cache is not c for c in caches):
                caches.append(cache)
        return caches

    def _run_one(self, spec: RunSpec) -> RunResult:
        return run_spec(spec, hooks=self.hooks,
                        tile_cache=self._cache_for(spec))

    def _run_isolated(self, spec: RunSpec) -> RunResult:
        """One spec, never a raise: exceptions that escape the resilient
        executor (cache resolution, result packaging) still come back
        as a structured ``failed`` result."""
        try:
            return self._run_one(spec)
        except Exception as exc:
            from repro.resilience.failure import RunFailure

            return RunResult(
                spec=spec.to_dict(), status="failed",
                failures=[
                    RunFailure.from_exception(exc, stage="campaign").to_dict()
                ],
                design=spec.design_label, strategy=spec.strategy,
                engine=spec.engine, error_kind=spec.error_kind,
            )

    def _apply_cache_chaos(self, specs: list[RunSpec],
                           notes: list) -> None:
        """Fire any selected cache-file faults against ``cache_dir``.

        Runs just before the final merge-load, so the write-back path
        itself is exercised against a hostile file: the load must
        cold-start (merging nothing) and the save must still produce a
        valid file from the in-memory entries.
        """
        from repro.resilience.chaos import (
            CACHE_FILE_KINDS,
            ChaosConfig,
            corrupt_cache_file,
        )
        from repro.tiling.cache import cache_file_path

        seen: set[str] = set()
        for spec in specs:
            cfg = ChaosConfig.coerce(spec.chaos)
            if cfg is None:
                continue
            for fault in cfg.select(spec):
                if fault.kind not in CACHE_FILE_KINDS:
                    continue
                if fault.kind in seen:
                    continue
                seen.add(fault.kind)
                if corrupt_cache_file(
                    cache_file_path(self.cache_dir), fault.kind,
                    seed=cfg.seed,
                ):
                    notes.append(
                        f"chaos: {fault.kind} applied to the persisted "
                        "tile cache before write-back"
                    )

    def _worker_spec(self, spec: RunSpec) -> RunSpec:
        """The spec a supervised worker receives.

        Process workers share warm tile configs only through the
        on-disk store, so the campaign's ``cache_dir`` rides along on
        every cache-enabled spec that did not pin its own.
        """
        if (
            self.cache_dir is not None
            and spec.cache != "off"
            and spec.cache_dir is None
        ):
            return spec.replaced(cache_dir=self.cache_dir)
        return spec

    def _run_supervised(self, spec: RunSpec) -> RunResult:
        from repro.resilience.supervisor import run_supervised

        return run_supervised(
            self._worker_spec(spec),
            hard_timeout_s=self.hard_timeout_s,
            stop_event=self._stop,
        )

    def _journal_append(self, spec: RunSpec, result: RunResult) -> None:
        """Record a finished run — but never an interrupted one.

        A ``WorkerInterrupted`` failure means the supervisor killed the
        child because the *campaign* was stopping, not because the run
        failed; journaling it would make ``--resume`` treat an unstarted
        run as a finished failure.
        """
        if self.journal is None:
            return
        if any(
            f.get("error") == "WorkerInterrupted" for f in result.failures
        ):
            return
        self.journal.append(spec, result)

    def _partition_resume(self, specs: list[RunSpec], notes: list):
        """Split specs into journaled-complete results and pending work."""
        finished: dict[int, RunResult] = {}
        pending: list[tuple[int, RunSpec]] = []
        prior = self.journal.load() if (
            self.resume and self.journal is not None
        ) else {}
        for index, spec in enumerate(specs):
            record = prior.get(spec.digest())
            if record is not None and record.get("status") in (
                "ok", "degraded"
            ):
                try:
                    finished[index] = RunResult.from_dict(record)
                    continue
                except (TypeError, ValueError):
                    pass  # journaled garbage: just re-run the spec
            pending.append((index, spec))
        if finished:
            notes.append(
                f"resume: skipped {len(finished)} journaled run(s), "
                f"{len(pending)} to execute"
            )
        return finished, pending

    def run(self, specs: list[RunSpec]) -> CampaignResult:
        specs = list(specs)
        notes: list = []
        slots, pending = self._partition_resume(specs, notes)
        caches: list[TileConfigCache] = []
        before: list[dict] = []
        if self.executor == "thread":
            # resolve every cache before the fan-out so disk loads
            # happen exactly once and the stats deltas bracket the runs
            for _, spec in pending:
                self._cache_for(spec)
            caches = self._campaign_caches()
            before = [cache.stats() for cache in caches]
        aborted = False
        interrupted = False
        t0 = time.perf_counter()

        run_one = (
            self._run_supervised if self.executor == "process"
            else self._run_isolated
        )

        def _collect(index: int, spec: RunSpec,
                     result: RunResult) -> bool:
            """Slot a finished run; True when the campaign must abort."""
            slots[index] = result
            self._journal_append(spec, result)
            # thread-mode runs already counted themselves in run_spec,
            # and process-mode child snapshots merge in the supervisor;
            # the campaign-level view counts every slotted run exactly
            # once regardless of executor
            METRICS.inc("repro_campaign_runs_total", status=result.status)
            if (
                result.status in ("failed", "timeout")
                and self.on_error == "abort"
            ):
                notes.append(
                    f"aborted after run {index} "
                    f"({result.design}: {result.status})"
                )
                return True
            return False

        try:
            if self.workers == 1 or len(pending) <= 1:
                for index, spec in pending:
                    result = run_one(spec)
                    if _collect(index, spec, result):
                        aborted = True
                        break
            else:
                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    futures = [
                        (index, spec, pool.submit(run_one, spec))
                        for index, spec in pending
                    ]
                    try:
                        for index, spec, future in futures:
                            if (aborted or interrupted) and future.cancel():
                                continue
                            result = future.result()
                            if result.failures and all(
                                f.get("error") == "WorkerInterrupted"
                                for f in result.failures
                            ):
                                continue  # the run never really happened
                            if _collect(index, spec, result) and not aborted:
                                aborted = True
                    except KeyboardInterrupt:
                        interrupted = True
                        self._stop.set()
                        pool.shutdown(wait=False, cancel_futures=True)
        except KeyboardInterrupt:
            interrupted = True
            self._stop.set()
        finally:
            if interrupted:
                notes.append(
                    f"interrupted with {len(slots)}/{len(specs)} run(s) "
                    "complete"
                    + (
                        "; resume with the same journal to finish"
                        if self.journal is not None else ""
                    )
                )
            # the write-back must happen even if the fan-out machinery
            # itself raises: completed runs already paid for their warm
            # entries, and a later campaign should start from them
            if self.executor == "thread" and self.cache_dir is not None:
                self._apply_cache_chaos(specs, notes)
                for cache in caches:
                    try:
                        save_tile_cache(cache, self.cache_dir)
                    except Exception as exc:
                        notes.append(
                            "tile-cache write-back failed: "
                            f"{type(exc).__name__}: {exc}"
                        )
        wall = time.perf_counter() - t0
        results = [slots[i] for i in sorted(slots)]
        if self.executor == "thread":
            cache_delta = self._thread_cache_delta(caches, before)
        else:
            cache_delta = self._process_cache_delta(results)
        return CampaignResult(
            results=results,
            wall_seconds=wall,
            workers=self.workers,
            cache=cache_delta,
            notes=notes,
            aborted=aborted,
            interrupted=interrupted,
            executor=self.executor,
        )

    @staticmethod
    def _thread_cache_delta(caches: list[TileConfigCache],
                            before: list[dict]) -> dict | None:
        if not caches:
            return None
        deltas = [
            stats_delta(b, cache.stats())
            for b, cache in zip(before, caches)
        ]
        cache_delta = {
            k: sum(d[k] for d in deltas)
            for k in ("hits", "misses", "stores", "rejected", "entries")
        }
        looked = cache_delta["hits"] + cache_delta["misses"]
        cache_delta["hit_rate"] = (
            cache_delta["hits"] / looked if looked else 0.0
        )
        return cache_delta

    @staticmethod
    def _process_cache_delta(results: list[RunResult]) -> dict | None:
        """Campaign cache counters = sum of the workers' per-run deltas."""
        per_run = [r.cache for r in results if r.cache is not None]
        if not per_run:
            return None
        keys = ("hits", "misses", "stores", "rejected", "entries")
        cache_delta = {
            k: sum(d.get(k, 0) for d in per_run) for k in keys
        }
        looked = cache_delta["hits"] + cache_delta["misses"]
        cache_delta["hit_rate"] = (
            cache_delta["hits"] / looked if looked else 0.0
        )
        return cache_delta
