"""`CampaignJournal` — append-only completion log for resumable campaigns.

A campaign that dies at run 800 of 1000 (SIGINT, OOM, power) should
resume at 801, not 1.  The journal is the minimum machinery that makes
that true: one JSONL line per *completed* run, keyed by
:meth:`RunSpec.digest` (which excludes harness-only fields like chaos
injection, so a resumed invocation without ``--chaos`` still matches),
appended and fsynced the moment the run finishes.  Append-only means a
crash can at worst truncate the final line — :meth:`load` tolerates a
torn tail by skipping lines that do not parse, so the journal is never
a new single point of failure.
"""

from __future__ import annotations

import json
import os

_JOURNAL_VERSION = 1


class CampaignJournal:
    """Append-only JSONL record of completed campaign runs."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, spec, result) -> None:
        """Durably record one completed run (flushed + fsynced)."""
        line = json.dumps({
            "v": _JOURNAL_VERSION,
            "digest": spec.digest(),
            "status": result.status,
            "result": result.to_dict(),
        }, sort_keys=True)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with open(self.path, "a+", encoding="utf-8") as handle:
            # a crash can tear the previous line mid-write; never glue
            # the new record onto the torn tail
            handle.seek(0, os.SEEK_END)
            if handle.tell():
                handle.seek(handle.tell() - 1)
                if handle.read(1) != "\n":
                    handle.write("\n")
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> dict:
        """``{spec_digest: result_dict}`` of every journaled run.

        Later entries win (a re-executed run supersedes its first
        attempt); malformed or torn lines are skipped, not fatal.
        """
        entries: dict = {}
        if not os.path.exists(self.path):
            return entries
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail from a mid-write crash
                if not isinstance(record, dict):
                    continue
                digest = record.get("digest")
                result = record.get("result")
                if isinstance(digest, str) and isinstance(result, dict):
                    entries[digest] = result
        return entries
