"""Append-only JSONL journals — resumable campaigns and service spools.

A campaign that dies at run 800 of 1000 (SIGINT, OOM, power) should
resume at 801, not 1; a debug-service daemon that restarts should pick
its queued jobs back up, not drop them.  :class:`JsonlJournal` is the
minimum machinery that makes both true: one flushed + fsynced JSON line
per record, appended the moment the event happens.  Append-only means a
crash can at worst truncate the final line — :meth:`JsonlJournal.records`
tolerates a torn tail by skipping lines that do not parse, so a journal
is never a new single point of failure.

:class:`CampaignJournal` specializes the record shape for completed
pipeline runs, keyed by :meth:`RunSpec.digest` (which excludes
harness-only fields like chaos injection, so a resumed invocation
without ``--chaos`` still matches).  The service layer
(:mod:`repro.service.queue`) reuses the same primitives for its pending
spool and results log.
"""

from __future__ import annotations

import json
import os

_JOURNAL_VERSION = 1


class JsonlJournal:
    """Append-only JSONL file with fsync and torn-tail tolerance."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append_record(self, record: dict) -> None:
        """Durably append one record (flushed + fsynced)."""
        line = json.dumps(record, sort_keys=True)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with open(self.path, "a+", encoding="utf-8") as handle:
            # a crash can tear the previous line mid-write; never glue
            # the new record onto the torn tail
            handle.seek(0, os.SEEK_END)
            if handle.tell():
                handle.seek(handle.tell() - 1)
                if handle.read(1) != "\n":
                    handle.write("\n")
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def records(self) -> list[dict]:
        """Every parseable record, in append order.

        Malformed or torn lines are skipped, not fatal — a journal
        truncated mid-write still yields everything before the tear.
        """
        out: list[dict] = []
        if not os.path.exists(self.path):
            return out
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail from a mid-write crash
                if isinstance(record, dict):
                    out.append(record)
        return out


class CampaignJournal(JsonlJournal):
    """Append-only JSONL record of completed campaign runs."""

    def append(self, spec, result) -> None:
        """Durably record one completed run (flushed + fsynced)."""
        self.append_record({
            "v": _JOURNAL_VERSION,
            "digest": spec.digest(),
            "status": result.status,
            "result": result.to_dict(),
        })

    def load(self) -> dict:
        """``{spec_digest: result_dict}`` of every journaled run.

        Later entries win (a re-executed run supersedes its first
        attempt); malformed or torn lines are skipped, not fatal.
        """
        entries: dict = {}
        for record in self.records():
            digest = record.get("digest")
            result = record.get("result")
            if isinstance(digest, str) and isinstance(result, dict):
                entries[digest] = result
        return entries
