"""`RunResult` — the JSON-serializable outcome of one pipeline run.

Everything a benchmark, a campaign aggregator, or a later process needs
from a finished run, in plain-JSON types: verdict flags, the final
candidate set, the full probe trajectory, per-stage and per-phase
timings, effort snapshots, and the tile-cache delta.  ``to_dict`` /
``from_dict`` round-trip every field, so results files written by
`python -m repro campaign` can be re-loaded and re-analyzed without the
objects that produced them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields


@dataclass
class RunResult:
    """One run's serializable outcome (see module docstring)."""

    #: the spec that produced this run (``RunSpec.to_dict`` form)
    spec: dict | None = None
    #: terminal state: "ok" | "degraded" | "failed" | "timeout"
    #: (see :data:`repro.resilience.failure.RUN_STATUSES`)
    status: str = "ok"
    #: per-attempt :class:`repro.resilience.failure.RunFailure` records
    #: (empty for a clean run; non-empty whenever an attempt died or
    #: timed out, even if a retry later succeeded)
    failures: list = field(default_factory=list)
    #: degradation-ladder notes ({"field", "from", "to", "stage", ...})
    #: — every fallback the run survived on, never silently swallowed
    degradations: list = field(default_factory=list)
    #: attempts consumed (1 + retries actually taken)
    attempts: int = 1
    design: str = ""
    strategy: str = ""
    engine: str = ""
    error_kind: str = ""
    error_instance: str = ""
    error_detail: str = ""
    #: how many errors were injected (the fields above describe the
    #: first; ``errors`` describes all of them)
    n_errors_injected: int = 1
    #: every injected error: {kind, instance, detail}, injection order
    errors: list = field(default_factory=list)
    detected: bool = False
    #: every injected error's instance appeared in the candidate set of
    #: some diagnosis round (single-fault: the historical meaning)
    localized: bool = False
    #: injected instances recovered by localization, sorted
    errors_found: list = field(default_factory=list)
    #: per-round diagnose→fix→re-detect records (RoundRecord.to_dict)
    rounds: list = field(default_factory=list)
    n_rounds: int = 0
    #: mismatches left on the stimulus after the last round's fix
    residual_mismatches: int = 0
    fixed: bool = False
    #: bounded-equivalence verdict from ``verify="prove"|"both"``
    #: (None when the proof never ran)
    proved: bool | None = None
    #: :meth:`repro.sat.equiv.ProofResult.to_dict` of the verify proof
    proof: dict | None = None
    #: per-cycle input words exciting the residual bug, if proof failed
    counterexample: list | None = None
    #: the compiled kernel reproduced the counterexample's mismatch
    counterexample_confirmed: bool | None = None
    #: CEGIS repair description (``correction="cegis"`` runs only;
    #: first success — later rounds' repairs are in ``corrections``)
    correction: dict | None = None
    #: per-round CEGIS repair descriptions
    corrections: list = field(default_factory=list)
    #: candidates eliminated by SAT pruning (``"sat"`` strategy runs),
    #: summed over rounds
    n_sat_eliminated: int = 0
    #: final candidate instances of the last round, sorted
    candidates: list = field(default_factory=list)
    #: per-probe records: probe / mismatch / candidates before & after
    #: (+ the 1-based diagnosis round), concatenated across rounds
    probe_trajectory: list = field(default_factory=list)
    n_probes: int = 0
    n_commits: int = 0
    n_commit_cache_hits: int = 0
    #: {"stages": {stage: seconds}, "localization": {phase: seconds}}
    timings: dict = field(default_factory=dict)
    #: {"initial": EffortMeter.snapshot(), "debug": ...}
    effort: dict = field(default_factory=dict)
    #: tile-cache counter delta over this run (None when cache is off)
    cache: dict | None = None
    #: per-stage cProfile top-N aggregation (``--profile`` runs only;
    #: :meth:`repro.obs.StageProfiler.result` form)
    profile: dict | None = None
    notes: list = field(default_factory=list)
    wall_seconds: float = 0.0

    # -- construction --------------------------------------------------

    @classmethod
    def from_context(cls, ctx, wall_seconds: float = 0.0,
                     cache: dict | None = None, status: str = "ok",
                     failures: list | None = None,
                     degradations: list | None = None,
                     attempts: int = 1,
                     profile: dict | None = None) -> "RunResult":
        """Package a finished :class:`~repro.api.pipeline.RunContext`.

        ``status``/``failures``/``degradations``/``attempts`` carry the
        resilient executor's verdict; a partially-executed context (a
        timed-out or failed run) packages cleanly — whatever stages
        completed contribute their trajectories and timings.
        """
        locs = list(getattr(ctx, "localizations", []) or [])
        if not locs and ctx.localization is not None:
            locs = [ctx.localization]
        loc = locs[-1] if locs else None
        trajectory = []
        loc_timings: dict = {}
        candidates: list = []
        n_probes = 0
        n_sat_eliminated = 0
        for one in locs:
            trajectory.extend(
                {
                    "probe": s.probe_instance,
                    "mismatch": s.mismatch,
                    "candidates_before": s.candidates_before,
                    "candidates_after": s.candidates_after,
                    "round": one.round,
                }
                for s in one.steps
            )
            n_probes += one.n_probes
            n_sat_eliminated += one.sat_eliminated
            for key, value in one.timings.items():
                loc_timings[key] = loc_timings.get(key, 0.0) + value
        loc_timings = {k: round(v, 6) for k, v in loc_timings.items()}
        if loc is not None:
            candidates = sorted(loc.candidates)
        spec_dict = None
        design = ctx.packed.netlist.name
        if ctx.spec is not None:
            spec_dict = ctx.spec.to_dict()
            design = ctx.spec.design_label
        errors = [
            {"kind": e.kind, "instance": e.instance, "detail": e.detail}
            for e in getattr(ctx, "errors", [])
        ]
        rounds = [r.to_dict() for r in getattr(ctx, "rounds", [])]
        return cls(
            spec=spec_dict,
            status=status,
            failures=list(failures or []),
            degradations=list(degradations or []),
            attempts=attempts,
            design=design,
            strategy=ctx.strategy.name,
            engine=ctx.engine,
            error_kind=ctx.error.kind if ctx.error else "",
            error_instance=ctx.error.instance if ctx.error else "",
            error_detail=ctx.error.detail if ctx.error else "",
            n_errors_injected=len(errors) or 1,
            errors=errors,
            detected=ctx.detected,
            localized=ctx.localized_correctly,
            errors_found=sorted(getattr(ctx, "errors_found", ())),
            rounds=rounds,
            n_rounds=len(rounds),
            residual_mismatches=len(ctx.remaining),
            fixed=ctx.fixed,
            proved=ctx.proved,
            proof=ctx.proof,
            counterexample=ctx.counterexample,
            counterexample_confirmed=ctx.counterexample_confirmed,
            correction=ctx.correction_info,
            corrections=list(getattr(ctx, "corrections", [])),
            n_sat_eliminated=n_sat_eliminated,
            candidates=candidates,
            probe_trajectory=trajectory,
            n_probes=n_probes,
            n_commits=len(ctx.strategy.commit_history),
            n_commit_cache_hits=ctx.strategy.cache_hits,
            timings={
                "stages": {
                    k: round(v, 6) for k, v in ctx.stage_seconds.items()
                },
                "localization": loc_timings,
            },
            effort={
                "initial": ctx.initial_effort.snapshot(),
                "debug": ctx.strategy.total_effort.snapshot(),
            },
            cache=cache,
            profile=profile,
            notes=list(ctx.notes),
            wall_seconds=round(wall_seconds, 6),
        )

    @classmethod
    def worker_failure(cls, spec, failure, status: str = "failed",
                       wall_seconds: float = 0.0) -> "RunResult":
        """A spec-complete result for a run whose executor died.

        Used when no :class:`RunContext` exists to package — the worker
        process crashed, was killed, or never produced a result — so
        campaign aggregation still sees a structurally complete record.
        """
        return cls(
            spec=spec.to_dict(),
            status=status,
            failures=[failure.to_dict()],
            design=spec.design_label,
            strategy=spec.strategy,
            engine=spec.engine,
            error_kind=spec.error_kind,
            wall_seconds=round(wall_seconds, 6),
        )

    # -- derived views -------------------------------------------------

    @property
    def completed(self) -> bool:
        """The pipeline ran to the end (possibly on a fallback path)."""
        return self.status in ("ok", "degraded")

    @property
    def localization_seconds(self) -> float:
        """Localization compute time — everything but the P&R commits."""
        loc = self.timings.get("localization", {})
        return sum(v for k, v in loc.items() if k != "commit")

    @property
    def commit_seconds(self) -> float:
        return self.timings.get("localization", {}).get("commit", 0.0)

    def trajectory_key(self) -> list:
        """Hashable probe-trajectory view for bit-identity comparisons."""
        return [
            (p["probe"], p["mismatch"], p["candidates_before"],
             p["candidates_after"])
            for p in self.probe_trajectory
        ]

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown result fields {unknown}; valid fields: "
                + ", ".join(sorted(known))
            )
        return cls(**data)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))
