"""Deterministic random-number handling.

Every stochastic component (annealer, generators, error injection, test
patterns) takes an explicit seed and derives an independent
:class:`random.Random` stream from it, so experiments are reproducible
bit-for-bit across runs and machines.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a label path.

    Hash-based derivation keeps independent components decorrelated even
    when the base seed is small or sequential.
    """
    text = f"{base_seed}/" + "/".join(str(label) for label in labels)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(base_seed: int, *labels: object) -> random.Random:
    """Return a fresh :class:`random.Random` for the given label path."""
    return random.Random(derive_seed(base_seed, *labels))
