"""repro — reproduction of Lach/Mangione-Smith/Potkonjak, DAC 2000.

"Efficient Error Detection, Localization, and Correction for FPGA-Based
Debugging" proposes *tiling*: partitioning an FPGA physical design into
independent blocks with locked interfaces so that each debugging change
(test-logic insertion or an error fix) only re-places-and-routes the
affected tiles.

The package is a complete, self-contained FPGA CAD substrate plus the
paper's contribution:

* :mod:`repro.netlist` — logic netlists, simulation, BLIF I/O, hierarchy.
* :mod:`repro.generators` — the nine benchmark designs of the paper.
* :mod:`repro.synth` — 4-LUT technology mapping and XC4000 CLB packing.
* :mod:`repro.arch` — the XC4000-style CLB-grid architecture model.
* :mod:`repro.pnr` — annealing placement, maze routing, timing, effort.
* :mod:`repro.tiling` — the paper's core: tiles, locked interfaces, slack.
* :mod:`repro.debug` — the emulation debug loop (detect/localize/correct).
* :mod:`repro.emu` — cycle emulation and mock bitstreams.
* :mod:`repro.analysis` — experiment drivers for Table 1 and Figures 3-5.
* :mod:`repro.api` — the public facade: `RunSpec`, the staged
  detect→localize→correct→verify pipeline, `CampaignRunner`, and the
  ``python -m repro`` CLI.
"""

from repro._version import __version__

__all__ = ["__version__"]
