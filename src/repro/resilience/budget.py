"""Cooperative wall-clock budgets for the debug pipeline.

Python threads cannot be preempted safely, so budgets are *cooperative*:
a :class:`Deadline` is pushed onto a thread-local stack
(:func:`deadline_scope`) and long-running code calls
:func:`check_deadline` at natural yield points — stage boundaries, each
localizer probe, every few hundred SAT search steps, each CEGIS
iteration.  When no deadline is active the check is one thread-local
attribute read, so the default (budget-free) path stays bit-identical
and effectively free.

Nesting composes naturally: a per-stage deadline inside a per-run
deadline means :func:`check_deadline` raises for whichever budget runs
out first, and the raised :class:`~repro.errors.DeadlineExceeded` names
the budget (``run`` vs ``stage:localize``) that tripped.

:func:`backoff_seconds` is the retry companion: a seed-stable
exponential backoff (hash-derived jitter, no global RNG state) so a
retried campaign re-executes with the exact same pacing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.errors import DeadlineExceeded
from repro.rng import derive_seed

_ACTIVE = threading.local()


class Deadline:
    """One wall-clock budget, armed at construction time."""

    __slots__ = ("seconds", "label", "_t0")

    def __init__(self, seconds: float, label: str = "run",
                 start: float | None = None) -> None:
        if not (isinstance(seconds, (int, float)) and seconds > 0):
            raise ValueError(
                f"deadline seconds must be a positive number, got {seconds!r}"
            )
        self.seconds = float(seconds)
        self.label = label
        self._t0 = time.perf_counter() if start is None else start

    def elapsed(self) -> float:
        return time.perf_counter() - self._t0

    def remaining(self) -> float:
        return self.seconds - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, where: str = "") -> None:
        elapsed = self.elapsed()
        if elapsed >= self.seconds:
            raise DeadlineExceeded(
                where=where, label=self.label,
                seconds=self.seconds, elapsed=elapsed,
            )


def _stack() -> list:
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = _ACTIVE.stack = []
    return stack


@contextmanager
def deadline_scope(deadline: Deadline | None):
    """Arm ``deadline`` for the enclosed block (``None`` = no-op)."""
    if deadline is None:
        yield None
        return
    stack = _stack()
    stack.append(deadline)
    try:
        yield deadline
    finally:
        stack.pop()


def check_deadline(where: str = "") -> None:
    """Raise :class:`DeadlineExceeded` if any armed budget ran out."""
    stack = getattr(_ACTIVE, "stack", None)
    if not stack:
        return
    for deadline in stack:
        deadline.check(where)


def active_deadline() -> Deadline | None:
    """The tightest armed deadline (least time remaining), or None."""
    stack = getattr(_ACTIVE, "stack", None)
    if not stack:
        return None
    return min(stack, key=lambda d: d.remaining())


def backoff_seconds(attempt: int, seed: int = 0, base: float = 0.0,
                    cap: float = 2.0) -> float:
    """Seed-stable exponential backoff before retry ``attempt + 1``.

    ``base == 0`` (the spec default) disables sleeping entirely.  The
    jitter factor lies in ``[0.5, 1.0)`` and is hash-derived from
    ``(seed, attempt)``, so two executions of the same spec pace their
    retries identically — determinism extends to the failure path.
    """
    if base <= 0:
        return 0.0
    raw = min(cap, base * (2 ** max(0, attempt - 1)))
    frac = derive_seed(seed, "resilience.backoff", attempt) % 1000 / 1000.0
    return raw * (0.5 + 0.5 * frac)


def clamp_backoff(delay: float, budget_s: float | None = None) -> float:
    """Clamp a retry sleep so it cannot eat a cooperative deadline.

    An unclamped backoff can sleep straight through the run's
    ``timeout_s`` (or an enclosing armed :class:`Deadline`), turning a
    retryable failure into a spurious timeout before the retry even
    starts.  The clamp keeps the sleep under half of the tightest
    budget in play — the retry attempt itself must get the larger
    share — and never stretches a delay, only shortens it.
    """
    if delay <= 0:
        return 0.0
    limit = float(budget_s) if budget_s else None
    outer = active_deadline()
    if outer is not None:
        remaining = max(0.0, outer.remaining())
        limit = remaining if limit is None else min(limit, remaining)
    if limit is None:
        return delay
    return max(0.0, min(delay, limit / 2.0))
