"""Deterministic chaos harness — fault injection for the *infrastructure*.

The paper injects faults into designs and asserts the debug loop finds
them; this module turns the same philosophy on the debug stack itself.
A :class:`ChaosConfig` (carried on ``RunSpec.chaos`` / ``--chaos``)
deterministically injects infrastructure faults so CI can assert that
every failure mode yields a structured ``failed`` / ``degraded`` /
``timeout`` result — never a crashed campaign:

* ``exception`` — raise :class:`~repro.errors.ChaosError` at the start
  of a chosen pipeline stage (a dying campaign worker);
* ``hang`` — busy-wait at a stage boundary until the cooperative
  deadline trips (exercises the budget machinery; without an armed
  deadline the hang simply delays ``hang_s`` seconds and continues);
* ``replay_reject`` — deny every tile-configuration cache replay as if
  apply-time verification had rejected it (forces the fresh-P&R rung
  of the degradation ladder);
* ``cache_truncate`` / ``cache_corrupt`` — damage the persisted tile
  cache on disk (truncation / deterministic byte flip of a seed-chosen
  store entry), proving the hostile-file load path quarantines and
  cold-starts instead of crashing;
* ``worker_kill`` / ``worker_hang`` — assassinate a supervised campaign
  worker *process* mid-stage (``SIGKILL`` self / ``SIGSTOP`` self, so
  heartbeats stop), proving the supervisor converts worker death into a
  structured ``RunFailure`` with stage ``"worker"``.  Outside a
  supervised worker (thread executor) these kinds are inert — an
  in-process kill would take the whole campaign down, which is exactly
  the failure mode the process executor exists to contain.

Everything is keyed by seed: fault selection hashes
``(config seed, spec seed, error seed, design)`` so a fault fires for
the same runs of a campaign on every execution, and a corrupted byte
lands at the same offset.  Faults default to firing **once per run**
(``fires: 1``) so a retry after an injected failure can succeed —
set ``fires: null`` for a fault that never goes away.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import ChaosError, SpecError
from repro.resilience.budget import check_deadline
from repro.rng import derive_seed

#: every injectable fault kind
CHAOS_KINDS = (
    "exception", "hang", "replay_reject", "cache_truncate", "cache_corrupt",
    "worker_kill", "worker_hang",
)
#: kinds that fire at pipeline stage boundaries
PIPELINE_KINDS = ("exception", "hang")
#: kinds that damage the persisted cache file
CACHE_FILE_KINDS = ("cache_truncate", "cache_corrupt")
#: kinds that assassinate a supervised worker process mid-stage
WORKER_KINDS = ("worker_kill", "worker_hang")

#: environment marker the supervisor sets in worker children; worker
#: kinds only fire when it is present (see :func:`in_supervised_worker`)
WORKER_ENV = "REPRO_SUPERVISED_WORKER"


def in_supervised_worker() -> bool:
    """True inside a process spawned by the campaign supervisor."""
    return bool(os.environ.get(WORKER_ENV))

_STAGE_NAMES = ("detect", "localize", "correct", "verify", "diagnose")

#: spec fields a fault's ``match`` clause may constrain
_MATCH_FIELDS = (
    "design", "strategy", "engine", "error_kind", "error_seed", "seed",
    "n_errors",
)


@dataclass(frozen=True)
class ChaosFault:
    """One injectable fault (see module docstring for the kinds)."""

    kind: str
    #: pipeline stage the fault targets (pipeline kinds only)
    stage: str = "localize"
    #: how long a ``hang`` stalls when no deadline interrupts it
    hang_s: float = 30.0
    #: deterministic firing probability in [0, 1]
    probability: float = 1.0
    #: spec-field → allowed values; empty = every spec matches
    match: dict = field(default_factory=dict)
    #: times the fault may trigger per run (``None`` = unlimited)
    fires: int | None = 1

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "stage": self.stage,
            "hang_s": self.hang_s,
            "probability": self.probability,
            "match": {k: list(v) for k, v in self.match.items()},
            "fires": self.fires,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosFault":
        if not isinstance(data, dict):
            raise SpecError(f"a chaos fault must be an object, got {data!r}")
        kind = data.get("kind")
        if kind not in CHAOS_KINDS:
            raise SpecError(
                f"unknown chaos kind {kind!r}; valid kinds: "
                + ", ".join(CHAOS_KINDS)
            )
        stage = data.get("stage", "localize")
        if stage not in _STAGE_NAMES:
            raise SpecError(
                f"unknown chaos stage {stage!r}; valid stages: "
                + ", ".join(_STAGE_NAMES)
            )
        hang_s = data.get("hang_s", 30.0)
        if not (isinstance(hang_s, (int, float)) and hang_s > 0):
            raise SpecError("chaos hang_s must be a positive number")
        probability = data.get("probability", 1.0)
        if not (
            isinstance(probability, (int, float)) and 0 <= probability <= 1
        ):
            raise SpecError("chaos probability must lie in [0, 1]")
        match = data.get("match", {})
        if not isinstance(match, dict):
            raise SpecError("chaos match must be an object")
        for key, values in match.items():
            if key not in _MATCH_FIELDS:
                raise SpecError(
                    f"chaos match field {key!r} not supported; valid "
                    "fields: " + ", ".join(_MATCH_FIELDS)
                )
            if not isinstance(values, (list, tuple)):
                raise SpecError(
                    f"chaos match values for {key!r} must be a list"
                )
        fires = data.get("fires", 1)
        if fires is not None and (
            not isinstance(fires, int) or fires < 1
        ):
            raise SpecError("chaos fires must be an int >= 1 or null")
        unknown = sorted(
            set(data) - {"kind", "stage", "hang_s", "probability",
                         "match", "fires"}
        )
        if unknown:
            raise SpecError(f"unknown chaos fault fields {unknown}")
        return cls(
            kind=kind, stage=stage, hang_s=float(hang_s),
            probability=float(probability),
            match={k: tuple(v) for k, v in match.items()},
            fires=fires,
        )

    def matches(self, spec, config_seed: int, index: int) -> bool:
        """Deterministic: does this fault fire for ``spec``?"""
        for key, values in self.match.items():
            if getattr(spec, key) not in values:
                return False
        if self.probability >= 1.0:
            return True
        if self.probability <= 0.0:
            return False
        frac = derive_seed(
            config_seed, "chaos", index, spec.design, spec.seed,
            spec.error_seed,
        ) % 1_000_000 / 1_000_000.0
        return frac < self.probability


@dataclass(frozen=True)
class ChaosConfig:
    """A seedable set of faults, as carried on ``RunSpec.chaos``."""

    faults: tuple = ()
    seed: int = 0

    @classmethod
    def coerce(cls, value) -> "ChaosConfig | None":
        """Accept None, a config, a fault dict, a fault list, or a
        ``{"faults": [...], "seed": n}`` object (raising
        :class:`~repro.errors.SpecError` on anything malformed)."""
        if value is None:
            return None
        if isinstance(value, cls):
            return value
        if isinstance(value, dict) and "kind" in value:
            value = {"faults": [value]}
        if isinstance(value, (list, tuple)):
            value = {"faults": list(value)}
        if not isinstance(value, dict):
            raise SpecError(
                f"chaos must be a fault object, a fault list, or a "
                f"config object, got {type(value).__name__}"
            )
        unknown = sorted(set(value) - {"faults", "seed"})
        if unknown:
            raise SpecError(f"unknown chaos config fields {unknown}")
        seed = value.get("seed", 0)
        if not isinstance(seed, int):
            raise SpecError("chaos seed must be an int")
        raw = value.get("faults", [])
        if not isinstance(raw, (list, tuple)) or not raw:
            raise SpecError("chaos faults must be a non-empty list")
        return cls(
            faults=tuple(ChaosFault.from_dict(f) for f in raw), seed=seed
        )

    def select(self, spec) -> list[ChaosFault]:
        """The faults that fire for this spec, deterministically."""
        return [
            fault for index, fault in enumerate(self.faults)
            if fault.matches(spec, self.seed, index)
        ]


# ----------------------------------------------------------------------
# pipeline-stage injection (thread-local, armed per run by the executor)
# ----------------------------------------------------------------------

_SCOPE = threading.local()


class ChaosInjector:
    """Per-run firing state for a spec's selected pipeline faults.

    Created once per ``run_spec`` call and shared across retry attempts
    so a ``fires: 1`` fault hits the first attempt and lets the retry
    through — the shape every real transient infrastructure fault has.
    """

    def __init__(self, faults) -> None:
        self.faults = [
            f for f in faults if f.kind in PIPELINE_KINDS + WORKER_KINDS
        ]
        self._remaining = {
            id(f): f.fires for f in self.faults if f.fires is not None
        }
        #: (stage, kind) pairs that actually triggered
        self.fired: list = []

    def stage_event(self, stage: str) -> None:
        """Called by the pipeline at the start of every stage."""
        for fault in self.faults:
            if fault.stage != stage:
                continue
            if fault.kind in WORKER_KINDS and not in_supervised_worker():
                # an in-process kill would take the whole campaign down;
                # worker assassination is only meaningful under the
                # process executor's supervision
                continue
            remaining = self._remaining.get(id(fault))
            if remaining is not None:
                if remaining <= 0:
                    continue
                self._remaining[id(fault)] = remaining - 1
            self.fired.append((stage, fault.kind))
            if fault.kind == "exception":
                raise ChaosError(
                    f"chaos: injected worker exception at stage {stage!r}"
                )
            if fault.kind == "worker_kill":
                # instant, uncatchable death — the OOM-killer's signature
                os.kill(os.getpid(), signal.SIGKILL)
            if fault.kind == "worker_hang":
                # freeze the whole process, heartbeat thread included,
                # so the supervisor's lost-heartbeat detection must fire
                os.kill(os.getpid(), signal.SIGSTOP)
                continue  # resumed (SIGCONT) runs carry on
            self._hang(fault, stage)

    @staticmethod
    def _hang(fault: ChaosFault, stage: str) -> None:
        """Stall until the armed deadline trips (or ``hang_s`` passes)."""
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < fault.hang_s:
            check_deadline(f"chaos.hang@{stage}")
            time.sleep(0.002)


@contextmanager
def chaos_scope(injector: ChaosInjector | None):
    """Arm ``injector`` for the enclosed pipeline execution."""
    if injector is None:
        yield
        return
    previous = getattr(_SCOPE, "injector", None)
    _SCOPE.injector = injector
    try:
        yield
    finally:
        _SCOPE.injector = previous


def chaos_stage_event(stage: str) -> None:
    """Pipeline hook point: fire any armed fault targeting ``stage``."""
    injector = getattr(_SCOPE, "injector", None)
    if injector is not None:
        injector.stage_event(stage)


# ----------------------------------------------------------------------
# cache faults
# ----------------------------------------------------------------------

class ReplayRejectingCache:
    """Tile-cache proxy that denies every replay (verification reject).

    Lookups that would have hit are counted against the inner cache as
    rejected replays (the accounting a real apply-time verification
    failure produces) and return ``None``, forcing the fresh-P&R path.
    Stores still land, so the run keeps warming the cache it is denied.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        #: replays denied (would-have-hit lookups)
        self.denied = 0

    def lookup(self, key):
        config = self.inner.lookup(key)
        if config is not None:
            self.inner.note_rejected()
            self.denied += 1
        return None

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def __len__(self) -> int:
        return len(self.inner)


def corrupt_cache_file(path: str, kind: str, seed: int = 0) -> bool:
    """Deterministically damage the persisted cache at ``path``.

    ``path`` may be a single file (damaged directly) or a
    content-addressed store directory, in which case one seed-chosen
    entry file takes the damage — the load path must quarantine it and
    cold-start that digest only.  ``cache_truncate`` halves the target
    file; ``cache_corrupt`` flips one seed-chosen byte.  Returns False
    (no-op) when there is nothing to corrupt — a cold start.
    """
    if kind not in CACHE_FILE_KINDS:
        raise ValueError(f"not a cache fault kind: {kind!r}")
    if os.path.isdir(path):
        from repro.tiling.cache import TileConfigStore

        entries = TileConfigStore(path).entry_files()
        if not entries:
            return False
        target = entries[
            derive_seed(seed, "chaos.cache_target") % len(entries)
        ]
        return corrupt_cache_file(target, kind, seed=seed)
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError:
        return False
    if not blob:
        return False
    if kind == "cache_truncate":
        blob = blob[: max(1, len(blob) // 2)]
    else:
        offset = derive_seed(seed, "chaos.cache_corrupt") % len(blob)
        blob = (
            blob[:offset]
            + bytes([blob[offset] ^ 0xFF])
            + blob[offset + 1:]
        )
    with open(path, "wb") as fh:
        fh.write(blob)
    return True
