"""Service-grade substrate for the run path: failure isolation,
cooperative budgets, a graceful-degradation ladder, and a deterministic
chaos harness.

The in-process half — structured :class:`RunFailure` records,
cooperative deadlines, retries and degradation, deterministic chaos —
landed first; :mod:`repro.resilience.supervisor` adds the hard half:
campaign runs executed in spawned child processes whose crashes,
hangs, and OOM-kills fold back into the same structured failure
taxonomy (stage ``"worker"``) instead of taking the campaign down.
Every failure mode stays exercisable in CI
(:mod:`repro.resilience.chaos`, including ``worker_kill`` /
``worker_hang``).
"""

from repro.resilience.budget import (
    Deadline,
    active_deadline,
    backoff_seconds,
    check_deadline,
    clamp_backoff,
    deadline_scope,
)
from repro.resilience.chaos import (
    CHAOS_KINDS,
    WORKER_KINDS,
    ChaosConfig,
    ChaosFault,
    ChaosInjector,
    ReplayRejectingCache,
    chaos_scope,
    chaos_stage_event,
    corrupt_cache_file,
    in_supervised_worker,
)
from repro.resilience.degrade import DEGRADATION_LADDER, next_degraded
from repro.resilience.failure import (
    RUN_STATUSES,
    WORKER_STAGE,
    RunFailure,
    traceback_digest,
)
from repro.resilience.supervisor import hard_timeout_for, run_supervised

__all__ = [
    "CHAOS_KINDS",
    "ChaosConfig",
    "ChaosFault",
    "ChaosInjector",
    "DEGRADATION_LADDER",
    "Deadline",
    "ReplayRejectingCache",
    "RUN_STATUSES",
    "RunFailure",
    "WORKER_KINDS",
    "WORKER_STAGE",
    "active_deadline",
    "backoff_seconds",
    "chaos_scope",
    "chaos_stage_event",
    "check_deadline",
    "clamp_backoff",
    "corrupt_cache_file",
    "deadline_scope",
    "hard_timeout_for",
    "in_supervised_worker",
    "next_degraded",
    "run_supervised",
    "traceback_digest",
]
