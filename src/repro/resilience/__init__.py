"""Service-grade substrate for the run path: failure isolation,
cooperative budgets, a graceful-degradation ladder, and a deterministic
chaos harness.

This package is the prerequisite for the process-pool / daemon refactor
(ROADMAP open item 1): before campaigns fan out across processes, a
single run must die *structurally* — a :class:`RunFailure` on a
``failed``/``timeout``/``degraded`` result — instead of taking the
whole campaign with it, and the failure modes themselves must be
exercisable in CI (:mod:`repro.resilience.chaos`).
"""

from repro.resilience.budget import (
    Deadline,
    active_deadline,
    backoff_seconds,
    check_deadline,
    deadline_scope,
)
from repro.resilience.chaos import (
    CHAOS_KINDS,
    ChaosConfig,
    ChaosFault,
    ChaosInjector,
    ReplayRejectingCache,
    chaos_scope,
    chaos_stage_event,
    corrupt_cache_file,
)
from repro.resilience.degrade import DEGRADATION_LADDER, next_degraded
from repro.resilience.failure import (
    RUN_STATUSES,
    RunFailure,
    traceback_digest,
)

__all__ = [
    "CHAOS_KINDS",
    "ChaosConfig",
    "ChaosFault",
    "ChaosInjector",
    "DEGRADATION_LADDER",
    "Deadline",
    "ReplayRejectingCache",
    "RUN_STATUSES",
    "RunFailure",
    "active_deadline",
    "backoff_seconds",
    "chaos_scope",
    "chaos_stage_event",
    "check_deadline",
    "corrupt_cache_file",
    "deadline_scope",
    "next_degraded",
    "traceback_digest",
]
