"""`RunFailure` — the structured record of one infrastructure failure.

The paper's philosophy (inject, detect, localize, correct) turned on
our own stack needs a taxonomy first: when a pipeline run dies, the
campaign must keep a machine-readable record instead of a traceback on
stderr.  A :class:`RunFailure` names the pipeline stage that was
executing, the exception class, a bounded message, a digest of the full
traceback (stable enough to group identical failures across a million
runs without shipping megabytes of text), the wall-clock spent, and the
attempt number — and JSON-round-trips like every other result object.
"""

from __future__ import annotations

import hashlib
import traceback
from dataclasses import dataclass, fields

from repro.errors import ChaosError, DeadlineExceeded

#: the four terminal states of a resilient run
RUN_STATUSES = ("ok", "degraded", "failed", "timeout")

#: stage recorded when the *worker process* itself died (nonzero exit,
#: signal, OOM-kill, lost heartbeat, hard-timeout kill) rather than a
#: pipeline stage failing inside it.  Supervision failures carry this
#: stage so campaign reports can split "the run's logic failed" from
#: "the machinery running it failed".
WORKER_STAGE = "worker"

#: characters kept of an exception message (hostile inputs can embed
#: arbitrarily large reprs in exception args)
_MESSAGE_LIMIT = 500


def traceback_digest(exc: BaseException) -> str:
    """Short stable digest of an exception's formatted traceback."""
    text = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return hashlib.sha256(text.encode("utf-8", "replace")).hexdigest()[:12]


@dataclass
class RunFailure:
    """One failed (or timed-out) pipeline attempt, JSON-ready."""

    #: pipeline stage executing when the failure surfaced
    #: ("setup" when the run never reached the stage walk)
    stage: str = ""
    #: exception class name
    error: str = ""
    #: bounded exception message
    message: str = ""
    #: 12-hex-digit SHA-256 of the formatted traceback
    traceback_digest: str = ""
    #: wall-clock seconds the attempt had consumed
    elapsed_s: float = 0.0
    #: 1-based attempt number (retries increment this)
    attempt: int = 1
    #: the failure was injected by the chaos harness
    chaos: bool = False

    @classmethod
    def from_exception(cls, exc: BaseException, stage: str = "",
                       elapsed_s: float = 0.0,
                       attempt: int = 1) -> "RunFailure":
        message = str(exc)
        if len(message) > _MESSAGE_LIMIT:
            message = message[:_MESSAGE_LIMIT] + "..."
        if not stage and isinstance(exc, DeadlineExceeded):
            stage = exc.where
        return cls(
            stage=stage,
            error=type(exc).__name__,
            message=message,
            traceback_digest=traceback_digest(exc),
            elapsed_s=round(elapsed_s, 6),
            attempt=attempt,
            chaos=isinstance(exc, ChaosError),
        )

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "error": self.error,
            "message": self.message,
            "traceback_digest": self.traceback_digest,
            "elapsed_s": self.elapsed_s,
            "attempt": self.attempt,
            "chaos": self.chaos,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunFailure":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown failure fields {unknown}; valid fields: "
                + ", ".join(sorted(known))
            )
        return cls(**data)
