"""Supervised worker processes — hard isolation for campaign runs.

PR 6's cooperative :class:`~repro.resilience.budget.Deadline`s can only
stop code that checks them; a worker that segfaults, gets OOM-killed,
or spins in a C loop is beyond cooperation.  This module supplies the
hard half of the contract: each campaign run ships as a JSON
:class:`~repro.api.spec.RunSpec` to a freshly spawned
``python -m repro.resilience.supervisor`` child, which executes
:func:`~repro.api.pipeline.run_spec` and streams JSONL events back on
stdout — ``heartbeat`` lines every :data:`HEARTBEAT_INTERVAL_S` seconds
while alive, then exactly one ``result`` (or ``error``) event.

The parent-side :func:`run_supervised` enforces three kill conditions
no cooperative check can: a *hard* wall-clock ceiling (``timeout_s``
scaled by :data:`HARD_TIMEOUT_FACTOR` plus slack, or an explicit
``hard_timeout_s``), a lost heartbeat (the child is wedged or
SIGSTOPped), and an external stop event (campaign SIGINT).  Every way
a worker can die — nonzero exit, signal, OOM-kill, protocol breakdown
— folds into a structured :class:`~repro.resilience.failure.RunFailure`
with stage :data:`~repro.resilience.failure.WORKER_STAGE`, so
``on_error="continue"`` campaigns sail past dead workers exactly as
they sail past failed runs.

Retries stay *inside* the child (``run_spec`` owns the retry +
degradation ladder); the supervisor never re-executes a dead worker —
that policy belongs to the campaign layer.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from collections import deque

from typing import TYPE_CHECKING

from repro.obs.metrics import METRICS
from repro.resilience.chaos import WORKER_ENV
from repro.resilience.failure import WORKER_STAGE, RunFailure

if TYPE_CHECKING:  # runtime import is deferred: repro.api imports the
    # pipeline, which imports modules that need repro.resilience —
    # pulling it in at module scope would make ``import repro.debug``
    # (or any other mid-graph entry) a circular-import landmine
    from repro.api.result import RunResult
    from repro.api.spec import RunSpec

#: default seconds between child heartbeat events on stdout; the parent
#: may override per run (``heartbeat_interval_s``) — the value rides to
#: the child inside the request JSON, so both sides always agree
HEARTBEAT_INTERVAL_S = 0.25
#: default seconds of event silence before the child is declared wedged
#: (the watchdog grace; must comfortably exceed the heartbeat interval)
DEFAULT_HEARTBEAT_TIMEOUT_S = 15.0
#: hard ceiling = cooperative ``timeout_s`` x factor + slack — generous
#: enough that the child's own graceful timeout path always wins when
#: it is able to run at all
HARD_TIMEOUT_FACTOR = 3.0
HARD_TIMEOUT_SLACK_S = 10.0
#: stderr lines retained for crash diagnostics
_STDERR_TAIL_LINES = 20
#: supervision poll period
_POLL_S = 0.05


def _failure(error: str, message: str, elapsed_s: float) -> RunFailure:
    return RunFailure(
        stage=WORKER_STAGE,
        error=error,
        message=message,
        elapsed_s=round(elapsed_s, 6),
    )


def _kill(proc: subprocess.Popen) -> None:
    """SIGKILL the child and reap it (no mercy, no zombies)."""
    try:
        proc.kill()
    except OSError:
        pass
    try:
        proc.wait(timeout=5.0)
    except Exception:
        pass


def _worker_env() -> dict:
    """Child environment: importable ``repro`` + the worker marker."""
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        pkg_root if not existing
        else pkg_root + os.pathsep + existing
    )
    env[WORKER_ENV] = "1"
    return env


#: public aliases for the service layer (:mod:`repro.service`), which
#: spawns its own looping workers but wants identical env + kill policy
worker_env = _worker_env
kill_process = _kill


class _ChildState:
    """Mutable supervision state shared with the reader threads."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.last_event = time.monotonic()
        self.result: dict | None = None
        self.error: dict | None = None
        #: the child's metrics snapshot, shipped with the result event
        self.metrics: dict | None = None
        self.stderr_tail: deque = deque(maxlen=_STDERR_TAIL_LINES)

    def touch(self) -> None:
        with self.lock:
            self.last_event = time.monotonic()

    def silent_for(self) -> float:
        with self.lock:
            return time.monotonic() - self.last_event


def _read_events(stream, state: _ChildState) -> None:
    """Drain child stdout: JSONL events, newest-event clock, payloads."""
    for line in stream:
        state.touch()
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if not isinstance(event, dict):
            continue
        kind = event.get("event")
        if kind == "result":
            with state.lock:
                state.result = event.get("result")
                state.metrics = event.get("metrics")
        elif kind == "error":
            with state.lock:
                state.error = event.get("failure")
        # heartbeats only feed the liveness clock


def _read_stderr(stream, state: _ChildState) -> None:
    for line in stream:
        state.stderr_tail.append(line.rstrip("\n"))


def hard_timeout_for(spec: RunSpec,
                     hard_timeout_s: float | None = None) -> float | None:
    """The wall-clock ceiling after which the child is killed."""
    if hard_timeout_s is not None:
        return float(hard_timeout_s)
    if spec.timeout_s is not None:
        return spec.timeout_s * HARD_TIMEOUT_FACTOR + HARD_TIMEOUT_SLACK_S
    return None


def run_supervised(
    spec: RunSpec,
    hard_timeout_s: float | None = None,
    heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
    stop_event: threading.Event | None = None,
    heartbeat_interval_s: float | None = None,
) -> RunResult:
    """Execute ``spec`` in a spawned, supervised worker process.

    Returns the child's :class:`RunResult` verbatim on success; any
    form of worker death returns a ``status="failed"`` (hard timeout:
    ``"timeout"``) result whose single failure record carries stage
    ``"worker"``.  Raises :class:`KeyboardInterrupt` through after
    killing the child, so Ctrl-C unwinds the campaign normally.

    ``heartbeat_interval_s`` overrides the child's heartbeat cadence
    (default :data:`HEARTBEAT_INTERVAL_S`); it rides to the child in the
    request JSON so both sides agree, and the caller is responsible for
    keeping ``heartbeat_timeout_s`` comfortably above it.
    """
    from repro.api.result import RunResult

    t0 = time.perf_counter()
    ceiling = hard_timeout_for(spec, hard_timeout_s)
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.resilience.supervisor"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=_worker_env(),
        text=True,
    )
    state = _ChildState()
    threads = [
        threading.Thread(target=_read_events, args=(proc.stdout, state),
                         daemon=True),
        threading.Thread(target=_read_stderr, args=(proc.stderr, state),
                         daemon=True),
    ]
    for t in threads:
        t.start()

    verdict: RunFailure | None = None
    status = "failed"
    try:
        try:
            request: dict = {"spec": spec.to_dict()}
            if heartbeat_interval_s is not None:
                request["heartbeat_interval_s"] = float(heartbeat_interval_s)
            proc.stdin.write(json.dumps(request))
            proc.stdin.close()
        except (BrokenPipeError, OSError):
            pass  # child died before reading; exit code tells the story

        while True:
            if proc.poll() is not None:
                break
            if stop_event is not None and stop_event.is_set():
                _kill(proc)
                verdict = _failure(
                    "WorkerInterrupted",
                    "campaign stop requested; worker killed",
                    time.perf_counter() - t0,
                )
                break
            elapsed = time.perf_counter() - t0
            if ceiling is not None and elapsed > ceiling:
                _kill(proc)
                status = "timeout"
                verdict = _failure(
                    "WorkerHardTimeout",
                    f"worker exceeded hard wall-clock limit "
                    f"{ceiling:.1f}s; killed",
                    elapsed,
                )
                break
            if state.silent_for() > heartbeat_timeout_s:
                _kill(proc)
                verdict = _failure(
                    "WorkerHeartbeatLost",
                    f"no worker event for {heartbeat_timeout_s:.1f}s "
                    "(hung or stopped); killed",
                    elapsed,
                )
                break
            time.sleep(_POLL_S)
    except KeyboardInterrupt:
        _kill(proc)
        raise
    finally:
        for t in threads:
            t.join(timeout=2.0)

    elapsed = time.perf_counter() - t0
    if verdict is not None:
        return RunResult.worker_failure(
            spec, verdict, status=status, wall_seconds=elapsed
        )

    rc = proc.returncode
    with state.lock:
        result_dict = state.result
        error_dict = state.error
        child_metrics = state.metrics
    if child_metrics is not None:
        # fold the child's whole-process snapshot into this process's
        # registry — each child is fresh, so snapshots never double-count
        METRICS.merge(child_metrics)
    if result_dict is not None:
        try:
            return RunResult.from_dict(result_dict)
        except (TypeError, ValueError) as exc:
            verdict = _failure(
                "WorkerProtocolError",
                f"worker result did not deserialize: {exc}",
                elapsed,
            )
    elif error_dict is not None:
        try:
            failure = RunFailure.from_dict(error_dict)
        except (TypeError, ValueError):
            failure = _failure(
                "WorkerProtocolError",
                "worker error event did not deserialize",
                elapsed,
            )
        if not failure.stage:
            failure.stage = WORKER_STAGE
        verdict = failure
    elif rc != 0:
        if rc is not None and rc < 0:
            try:
                signame = signal.Signals(-rc).name
            except ValueError:
                signame = f"signal {-rc}"
            detail = f"worker killed by {signame}"
            if -rc == signal.SIGKILL:
                detail += " (chaos worker_kill, OOM-kill, or supervisor)"
        else:
            detail = f"worker exited with code {rc}"
        tail = "\n".join(state.stderr_tail).strip()
        if tail:
            detail += f"; stderr tail: {tail[-500:]}"
        verdict = _failure("WorkerCrashed", detail, elapsed)
    else:
        verdict = _failure(
            "WorkerProtocolError",
            "worker exited cleanly without emitting a result event",
            elapsed,
        )
    return RunResult.worker_failure(
        spec, verdict, status=status, wall_seconds=elapsed
    )


# -- child side --------------------------------------------------------


def _emit(payload: dict, lock: threading.Lock) -> None:
    with lock:
        sys.stdout.write(json.dumps(payload) + "\n")
        sys.stdout.flush()


def _heartbeat_loop(lock: threading.Lock, stop: threading.Event,
                    interval_s: float = HEARTBEAT_INTERVAL_S) -> None:
    while not stop.wait(interval_s):
        try:
            _emit({"event": "heartbeat"}, lock)
        except (BrokenPipeError, OSError):
            return  # supervisor is gone; the kill follows shortly


#: public aliases for the service worker's reuse of the child-side
#: emit + heartbeat machinery
emit_event = _emit
heartbeat_loop = _heartbeat_loop


def worker_main() -> int:
    """Child entry point: one spec in on stdin, one result out on stdout."""
    from repro.api.pipeline import run_spec
    from repro.api.spec import RunSpec

    lock = threading.Lock()
    stop = threading.Event()
    try:
        request = json.loads(sys.stdin.read())
        spec = RunSpec.from_dict(request["spec"])
        interval_s = float(
            request.get("heartbeat_interval_s") or HEARTBEAT_INTERVAL_S
        )
    except BaseException as exc:  # noqa: BLE001 — report, don't crash
        _emit({
            "event": "error",
            "failure": RunFailure.from_exception(
                exc, stage=WORKER_STAGE
            ).to_dict(),
        }, lock)
        return 1
    beat = threading.Thread(
        target=_heartbeat_loop, args=(lock, stop, interval_s), daemon=True
    )
    beat.start()
    try:
        result = run_spec(spec)
    except BaseException as exc:  # noqa: BLE001
        stop.set()
        _emit({
            "event": "error",
            "failure": RunFailure.from_exception(
                exc, stage=WORKER_STAGE
            ).to_dict(),
        }, lock)
        return 1
    stop.set()
    _emit({
        "event": "result",
        "result": result.to_dict(),
        # the run's metrics ride the result event so the campaign
        # parent can merge process-mode workers into its own registry
        "metrics": METRICS.snapshot(),
    }, lock)
    return 0


if __name__ == "__main__":
    sys.exit(worker_main())
