"""Graceful-degradation ladder for infrastructure failures.

When a run attempt dies and retries remain, the executor does not just
re-run the identical spec — it steps *down* the capability ladder,
trading the accelerated/formal machinery for the simpler retained
reference paths that the accelerated paths are tested bit-identical
against:

* ``strategy``   ``sat``      → ``tiled``        (SAT pruning off)
* ``correction`` ``cegis``    → ``oracle``       (back-annotation)
* ``engine``     ``codegen``  → ``compiled``     (no exec-compiled source)
* ``engine``     ``compiled`` → ``interpreted``  (reference simulator)
* ``cache``      ``shared``/``private`` → ``off`` (fresh P&R, no replay)

The engine ladder is stepwise — a codegen failure first retries on the
instruction-tape kernel, and only a failure there falls all the way to
the interpreted reference.

Each applied rung is recorded as a ``degradation`` note on the result
(never a silent swallow), and a run that finished only thanks to a
fallback reports ``status="degraded"``.

Rung selection is stage-aware: a failure inside ``correct`` suggests
the CEGIS rung before the engine rung, a failure inside ``localize``
the SAT-strategy rung, and so on.  When no stage-matched rung applies
the first applicable rung in ladder order is taken, so a retry always
makes *some* change when one is available.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rung:
    """One ladder step: ``field`` falls from ``sources`` to ``target``."""

    field: str
    sources: tuple
    target: str
    #: failure stages this rung most plausibly explains
    stages: tuple


#: ladder order = preference order when several rungs apply
DEGRADATION_LADDER = (
    Rung("strategy", ("sat",), "tiled", ("localize", "diagnose")),
    Rung("correction", ("cegis",), "oracle", ("correct", "diagnose")),
    Rung("engine", ("codegen",), "compiled",
         ("detect", "localize", "correct", "verify", "diagnose")),
    Rung("engine", ("compiled",), "interpreted",
         ("detect", "localize", "correct", "verify", "diagnose")),
    Rung("cache", ("shared", "private"), "off",
         ("setup", "detect", "localize", "correct", "diagnose")),
)


def _applicable(spec, rung: Rung) -> bool:
    return getattr(spec, rung.field) in rung.sources


def next_degraded(spec, stage: str = ""):
    """The next rung down for a failure at ``stage``, or ``None``.

    Returns ``(degraded_spec, note)`` where ``note`` is the JSON-ready
    degradation record ``{"field", "from", "to", "stage"}``; ``None``
    when the spec already sits at the bottom of every rung.
    """
    matched = [
        rung for rung in DEGRADATION_LADDER
        if _applicable(spec, rung) and stage in rung.stages
    ]
    fallback = [
        rung for rung in DEGRADATION_LADDER if _applicable(spec, rung)
    ]
    for rung in matched or fallback:
        current = getattr(spec, rung.field)
        note = {
            "field": rung.field,
            "from": current,
            "to": rung.target,
            "stage": stage,
        }
        return spec.replaced(**{rung.field: rung.target}), note
    return None
