"""Front-end synthesis: gate decomposition, LUT mapping, CLB packing.

* :mod:`repro.synth.techmap` — turn an arbitrary gate netlist into a
  netlist of 4-input LUTs, DFFs and IOs (the XC4000 primitive set).
* :mod:`repro.synth.pack` — group LUT/FF pairs into two-BLE CLBs and
  derive the block-level netlist that placement and routing operate on.
"""

from repro.synth.techmap import map_to_luts
from repro.synth.pack import (
    BLE,
    Block,
    BlockKind,
    BlockNet,
    CLB,
    PackedDesign,
    pack_netlist,
)

__all__ = [
    "map_to_luts",
    "BLE",
    "Block",
    "BlockKind",
    "BlockNet",
    "CLB",
    "PackedDesign",
    "pack_netlist",
]
