"""CLB packing: LUT/FF netlist → placeable two-BLE CLB blocks.

The XC4000 CLB of the paper holds two 4-input function generators and two
flip-flops ("two 16-bit lookup tables" [13]).  We model it as two BLEs
(basic logic elements), each a LUT, an FF, or a LUT feeding an FF.

Packing proceeds exactly like a light T-VPack:

1. **BLE formation** — a LUT whose only fanout is a DFF's D pin merges
   with that DFF (the registered-output CLB mode); remaining LUTs and
   DFFs each get their own BLE;
2. **CLB pairing** — BLEs are greedily paired by *attraction* (number of
   shared nets), which keeps tightly-connected logic together and gives
   the placer locality to exploit.

The result, :class:`PackedDesign`, also carries the *block-level netlist*
(:class:`BlockNet`), which is what placement, routing and tiling see:
intra-CLB nets vanish, and each remaining net connects a driver block to
sink blocks.  Primary IOs become IOB blocks placed on the device ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import SynthesisError
from repro.netlist.cells import CellKind
from repro.netlist.core import Netlist


class BlockKind(str, Enum):
    CLB = "CLB"
    IOB_IN = "IOB_IN"
    IOB_OUT = "IOB_OUT"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class BLE:
    """One basic logic element: LUT, FF, or LUT→FF pair."""

    lut: str | None
    ff: str | None
    output_net: str
    input_nets: tuple[str, ...]

    @property
    def label(self) -> str:
        return self.lut or self.ff or "<empty>"


@dataclass
class CLB:
    """A packed CLB: up to two BLEs."""

    name: str
    bles: list[BLE]

    def instance_names(self) -> list[str]:
        names = []
        for ble in self.bles:
            if ble.lut:
                names.append(ble.lut)
            if ble.ff:
                names.append(ble.ff)
        return names


@dataclass(frozen=True)
class Block:
    """A placeable unit: one CLB or one IOB."""

    index: int
    name: str
    kind: BlockKind
    instances: tuple[str, ...]

    @property
    def is_clb(self) -> bool:
        return self.kind is BlockKind.CLB


@dataclass(frozen=True)
class BlockNet:
    """A net of the block-level netlist: driver block → sink blocks."""

    index: int
    name: str
    driver: int
    sinks: tuple[int, ...]

    @property
    def n_terminals(self) -> int:
        return 1 + len(self.sinks)


class PackedDesign:
    """The placeable view of a mapped netlist.

    ``nets`` is keyed by a stable integer index: ECO refreshes
    (:func:`refresh_block_nets`) keep the index of an unchanged net so
    existing routes stay valid, retire removed nets, and allocate fresh
    indices for new ones.
    """

    def __init__(
        self,
        netlist: Netlist,
        clbs: list[CLB],
        blocks: list[Block],
        nets: dict[int, BlockNet],
        block_of_instance: dict[str, int],
    ) -> None:
        self.netlist = netlist
        self.clbs = clbs
        self.blocks = blocks
        self.nets = nets
        self.block_of_instance = block_of_instance
        self._net_index_of_name = {net.name: idx for idx, net in nets.items()}
        self._next_net_index = max(nets, default=-1) + 1
        self._clb_by_name = {clb.name: clb for clb in clbs}

    @property
    def n_clbs(self) -> int:
        return len(self.clbs)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def clb_blocks(self) -> list[Block]:
        return [b for b in self.blocks if b.is_clb]

    def io_blocks(self) -> list[Block]:
        return [b for b in self.blocks if not b.is_clb]

    def blocks_of_instances(self, instance_names) -> set[int]:
        """Block indices touched by the given netlist instances.

        Instances unknown to the packing (e.g. freshly added by an ECO
        and not yet re-packed) are ignored — the caller decides where
        new logic lands.
        """
        found = set()
        for name in instance_names:
            idx = self.block_of_instance.get(name)
            if idx is not None:
                found.add(idx)
        return found

    def nets_touching_blocks(self, block_indices: set[int]) -> list[BlockNet]:
        hits = []
        for net in self.nets.values():
            if net.driver in block_indices or any(
                s in block_indices for s in net.sinks
            ):
                hits.append(net)
        return hits

    def net_index_of(self, net_name: str) -> int | None:
        return self._net_index_of_name.get(net_name)

    def clb_of_block(self, block_index: int) -> CLB:
        """The CLB packing record behind a CLB block.

        Blocks from the initial packing line up with ``clbs`` by index,
        but ECO-added CLBs get block indices past the IOBs, so the
        lookup goes through the block name.
        """
        block = self.blocks[block_index]
        if not block.is_clb:
            raise SynthesisError(f"block {block.name} is not a CLB")
        return self._clb_by_name[block.name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedDesign({self.netlist.name!r}, {self.n_clbs} CLBs, "
            f"{len(self.nets)} block nets)"
        )


def pack_netlist(mapped: Netlist) -> PackedDesign:
    """Pack a mapped (LUT/DFF/IO-only) netlist into CLB blocks."""
    _check_mapped(mapped)
    bles = _form_bles(mapped)
    clbs = _pair_bles(mapped, bles)
    return _build_blocks(mapped, clbs)


# ----------------------------------------------------------------------
# BLE formation
# ----------------------------------------------------------------------

def _check_mapped(netlist: Netlist) -> None:
    allowed = {CellKind.INPUT, CellKind.OUTPUT, CellKind.LUT, CellKind.DFF}
    for inst in netlist.instances():
        if inst.kind not in allowed:
            raise SynthesisError(
                f"cannot pack unmapped instance {inst.name} ({inst.kind}); "
                "run map_to_luts first"
            )


def _form_bles(netlist: Netlist) -> list[BLE]:
    bles: list[BLE] = []
    absorbed_luts: set[str] = set()

    for ff in netlist.flip_flops():
        d_net = ff.inputs[0]
        driver = d_net.driver
        if (
            driver is not None
            and driver.kind is CellKind.LUT
            and d_net.fanout == 1
            and driver.name not in absorbed_luts
        ):
            bles.append(
                BLE(
                    lut=driver.name,
                    ff=ff.name,
                    output_net=ff.output.name,
                    input_nets=tuple(n.name for n in driver.inputs),
                )
            )
            absorbed_luts.add(driver.name)
        else:
            bles.append(
                BLE(
                    lut=None,
                    ff=ff.name,
                    output_net=ff.output.name,
                    input_nets=(d_net.name,),
                )
            )

    for inst in netlist.instances():
        if inst.kind is not CellKind.LUT or inst.name in absorbed_luts:
            continue
        bles.append(
            BLE(
                lut=inst.name,
                ff=None,
                output_net=inst.output.name,
                input_nets=tuple(n.name for n in inst.inputs),
            )
        )
    return bles


# ----------------------------------------------------------------------
# CLB pairing
# ----------------------------------------------------------------------

def _pair_bles(netlist: Netlist, bles: list[BLE]) -> list[CLB]:
    """Greedy attraction pairing; always fills CLBs to two BLEs."""
    net_to_bles: dict[str, list[int]] = {}
    for i, ble in enumerate(bles):
        for net_name in set(ble.input_nets) | {ble.output_net}:
            net_to_bles.setdefault(net_name, []).append(i)

    paired = [False] * len(bles)
    clbs: list[CLB] = []
    for i, ble in enumerate(bles):
        if paired[i]:
            continue
        paired[i] = True
        partner = _best_partner(bles, paired, net_to_bles, i)
        members = [ble]
        if partner is not None:
            paired[partner] = True
            members.append(bles[partner])
        clbs.append(CLB(name=f"clb{len(clbs)}", bles=members))
    return clbs


def _best_partner(
    bles: list[BLE],
    paired: list[bool],
    net_to_bles: dict[str, list[int]],
    i: int,
) -> int | None:
    """Unpaired BLE with the most shared nets; falls back to the next
    unpaired BLE so no CLB is left half-empty unnecessarily."""
    scores: dict[int, int] = {}
    ble = bles[i]
    for net_name in set(ble.input_nets) | {ble.output_net}:
        for j in net_to_bles.get(net_name, ()):
            if j != i and not paired[j]:
                scores[j] = scores.get(j, 0) + 1
    if scores:
        best = max(scores.items(), key=lambda kv: (kv[1], -kv[0]))
        return best[0]
    for j in range(i + 1, len(bles)):
        if not paired[j]:
            return j
    return None


# ----------------------------------------------------------------------
# block-level netlist
# ----------------------------------------------------------------------

def _build_blocks(netlist: Netlist, clbs: list[CLB]) -> PackedDesign:
    blocks: list[Block] = []
    block_of_instance: dict[str, int] = {}

    for clb in clbs:
        idx = len(blocks)
        names = tuple(clb.instance_names())
        blocks.append(Block(idx, clb.name, BlockKind.CLB, names))
        for name in names:
            block_of_instance[name] = idx

    for pi in netlist.primary_inputs():
        idx = len(blocks)
        blocks.append(Block(idx, pi.name, BlockKind.IOB_IN, (pi.name,)))
        block_of_instance[pi.name] = idx
    for po in netlist.primary_outputs():
        idx = len(blocks)
        blocks.append(Block(idx, po.name, BlockKind.IOB_OUT, (po.name,)))
        block_of_instance[po.name] = idx

    nets: dict[int, BlockNet] = {}
    for net in netlist.nets():
        blocknet = _derive_block_net(net, block_of_instance, len(nets))
        if blocknet is not None:
            nets[blocknet.index] = blocknet

    return PackedDesign(netlist, clbs, blocks, nets, block_of_instance)


def _derive_block_net(net, block_of_instance: dict[str, int], index: int):
    if net.driver is None:
        return None
    driver_block = block_of_instance.get(net.driver.name)
    if driver_block is None:
        return None
    sink_blocks: list[int] = []
    for sink, _ in net.sinks:
        b = block_of_instance.get(sink.name)
        if b is not None and b != driver_block and b not in sink_blocks:
            sink_blocks.append(b)
    if not sink_blocks:
        return None
    return BlockNet(index, net.name, driver_block, tuple(sorted(sink_blocks)))


# ----------------------------------------------------------------------
# incremental packing (ECO support)
# ----------------------------------------------------------------------

def extend_packing(packed: PackedDesign, new_instance_names: set[str]) -> set[int]:
    """Pack freshly added instances into new blocks; return their indices.

    Called after a debugging change added LUT/DFF instances (and possibly
    primary outputs for observation flags) to ``packed.netlist``.  New
    LUT→FF pairs merge into one BLE; BLEs pair into new CLBs; new IO
    markers become IOB blocks.  Existing blocks are never repacked — the
    paper's flow re-places tiles, it does not re-synthesize them.
    """
    netlist = packed.netlist
    fresh = [
        netlist.instance(name)
        for name in sorted(new_instance_names)
        if netlist.has_instance(name) and name not in packed.block_of_instance
    ]
    new_block_indices: set[int] = set()
    if not fresh:
        return new_block_indices

    luts = [i for i in fresh if i.kind is CellKind.LUT]
    ffs = [i for i in fresh if i.kind is CellKind.DFF]
    ios = [i for i in fresh if i.is_io]
    other = [
        i for i in fresh if not (i.is_io or i.kind in (CellKind.LUT, CellKind.DFF))
    ]
    if other:
        raise SynthesisError(
            "ECO instances must be mapped primitives, got: "
            + ", ".join(f"{i.name}({i.kind})" for i in other[:5])
        )

    bles: list[BLE] = []
    absorbed: set[str] = set()
    for ff in ffs:
        d_net = ff.inputs[0]
        driver = d_net.driver
        if (
            driver is not None
            and driver.kind is CellKind.LUT
            and driver in luts
            and d_net.fanout == 1
            and driver.name not in absorbed
        ):
            bles.append(BLE(driver.name, ff.name, ff.output.name,
                            tuple(n.name for n in driver.inputs)))
            absorbed.add(driver.name)
        else:
            bles.append(BLE(None, ff.name, ff.output.name, (d_net.name,)))
    for lut in luts:
        if lut.name not in absorbed:
            bles.append(BLE(lut.name, None, lut.output.name,
                            tuple(n.name for n in lut.inputs)))

    for i in range(0, len(bles), 2):
        members = bles[i : i + 2]
        clb = CLB(name=f"clb{len(packed.clbs)}", bles=list(members))
        packed.clbs.append(clb)
        packed._clb_by_name[clb.name] = clb
        idx = len(packed.blocks)
        names = tuple(clb.instance_names())
        packed.blocks.append(Block(idx, clb.name, BlockKind.CLB, names))
        for name in names:
            packed.block_of_instance[name] = idx
        new_block_indices.add(idx)

    for io in ios:
        idx = len(packed.blocks)
        kind = BlockKind.IOB_IN if io.kind is CellKind.INPUT else BlockKind.IOB_OUT
        packed.blocks.append(Block(idx, io.name, kind, (io.name,)))
        packed.block_of_instance[io.name] = idx
        new_block_indices.add(idx)
    return new_block_indices


def retire_instances(packed: PackedDesign, removed_names) -> set[int]:
    """Detach deleted netlist instances from the packing bookkeeping.

    Called after an ECO removed instances (e.g. retiring stale
    observation points): their ``block_of_instance`` entries are
    dropped, their BLEs emptied, and the owning :class:`Block` records
    rebuilt without them.  Block *indices* are positional throughout
    placement, routing and tiling, so emptied blocks are never deleted
    — they stay placed as zero-logic blocks whose configuration frames
    are empty (a retired CLB/IOB site, exactly what clearing the
    instrumentation out of a tile leaves behind).

    Returns the indices of the blocks that lost instances.  Callers
    must resolve ``blocks_of_instances`` for the removal *before* this
    runs (the mapping is consumed here), and run
    :func:`refresh_block_nets` after.
    """
    touched: set[int] = set()
    for name in sorted(removed_names):
        idx = packed.block_of_instance.pop(name, None)
        if idx is None:
            continue
        touched.add(idx)
        block = packed.blocks[idx]
        if block.is_clb:
            clb = packed._clb_by_name[block.name]
            for ble in clb.bles:
                if ble.lut == name:
                    ble.lut = None
                if ble.ff == name:
                    ble.ff = None
            clb.bles = [b for b in clb.bles if b.lut or b.ff]
        packed.blocks[idx] = Block(
            idx, block.name, block.kind,
            tuple(n for n in block.instances if n != name),
        )
    return touched


def refresh_block_nets(
    packed: PackedDesign,
) -> tuple[set[int], set[int], set[int]]:
    """Re-derive block nets after netlist ECO edits.

    Returns (new, changed, removed) net indices.  Unchanged nets keep
    their index *and* identity so existing routes remain valid.
    """
    new_ids: set[int] = set()
    changed_ids: set[int] = set()
    seen_names: set[str] = set()

    for net in packed.netlist.nets():
        blocknet = _derive_block_net(net, packed.block_of_instance, -1)
        if blocknet is None:
            continue
        seen_names.add(net.name)
        old_idx = packed._net_index_of_name.get(net.name)
        if old_idx is None:
            idx = packed._next_net_index
            packed._next_net_index += 1
            packed.nets[idx] = BlockNet(
                idx, blocknet.name, blocknet.driver, blocknet.sinks
            )
            packed._net_index_of_name[net.name] = idx
            new_ids.add(idx)
            continue
        old = packed.nets[old_idx]
        if old.driver != blocknet.driver or old.sinks != blocknet.sinks:
            packed.nets[old_idx] = BlockNet(
                old_idx, blocknet.name, blocknet.driver, blocknet.sinks
            )
            changed_ids.add(old_idx)

    removed_ids: set[int] = set()
    for name, idx in list(packed._net_index_of_name.items()):
        if name not in seen_names:
            removed_ids.add(idx)
            del packed._net_index_of_name[name]
            del packed.nets[idx]
    return new_ids, changed_ids, removed_ids
