"""Technology mapping: gate netlist → 4-input LUT netlist.

The mapper works in three passes, all functional-equivalence preserving
(the property-based tests check mapped-vs-original simulation):

1. **decompose** — split gates wider than four inputs into trees of
   four-input gates of the same kind (all our n-ary kinds associate,
   with NAND/NOR handled by splitting into AND/OR trees with a final
   inverting stage);
2. **absorb** — convert every remaining combinational gate into a LUT
   with the equivalent truth table, folding constant inputs away;
3. **collapse** — greedily merge single-fanout LUT pairs whose combined
   support still fits four inputs (a light-weight stand-in for
   FlowMap-style depth-aware covering; adequate because the paper's
   experiments depend on cell counts, not mapping optimality).

The output netlist contains only INPUT, OUTPUT, LUT and DFF instances.
"""

from __future__ import annotations

from repro.errors import SynthesisError
from repro.netlist.cells import (
    CellKind,
    GATE_KINDS,
    LUT_MAX_INPUTS,
    eval_lut,
    lut_table_for_gate,
)
from repro.netlist.core import Instance, Netlist

_SPLITTABLE = {
    CellKind.AND: (CellKind.AND, False),
    CellKind.OR: (CellKind.OR, False),
    CellKind.XOR: (CellKind.XOR, False),
    CellKind.NAND: (CellKind.AND, True),
    CellKind.NOR: (CellKind.OR, True),
    CellKind.XNOR: (CellKind.XOR, True),
}


def map_to_luts(netlist: Netlist, collapse: bool = True) -> Netlist:
    """Return a new netlist mapped onto the XC4000 primitive set."""
    mapped = netlist.copy(f"{netlist.name}.mapped")
    _decompose_wide_gates(mapped)
    _absorb_gates_into_luts(mapped)
    if collapse:
        _collapse_lut_pairs(mapped)
    _specialize_constants(mapped)
    mapped.prune_dangling()
    _check_only_primitives(mapped)
    return mapped


# ----------------------------------------------------------------------
# pass 1: decomposition
# ----------------------------------------------------------------------

def _decompose_wide_gates(netlist: Netlist) -> None:
    wide = [
        inst
        for inst in list(netlist.instances())
        if inst.kind in _SPLITTABLE and len(inst.inputs) > LUT_MAX_INPUTS
    ]
    for inst in wide:
        base_kind, invert = _SPLITTABLE[inst.kind]
        inputs = list(inst.inputs)
        output = inst.output
        netlist.remove_instance(inst)
        layer = inputs
        while len(layer) > LUT_MAX_INPUTS:
            nxt = []
            for i in range(0, len(layer), LUT_MAX_INPUTS):
                chunk = layer[i : i + LUT_MAX_INPUTS]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                else:
                    nxt.append(netlist.add_gate(base_kind, chunk))
            layer = nxt
        final_kind = base_kind if not invert else _INVERTED[base_kind]
        netlist.add_instance(final_kind, layer, name=inst.name, output=output)


_INVERTED = {
    CellKind.AND: CellKind.NAND,
    CellKind.OR: CellKind.NOR,
    CellKind.XOR: CellKind.XNOR,
}


# ----------------------------------------------------------------------
# pass 2: gate → LUT absorption
# ----------------------------------------------------------------------

def _absorb_gates_into_luts(netlist: Netlist) -> None:
    for inst in list(netlist.instances()):
        if inst.kind not in GATE_KINDS:
            continue
        if inst.kind in (CellKind.CONST0, CellKind.CONST1):
            continue  # handled by constant specialization
        if len(inst.inputs) > LUT_MAX_INPUTS:
            raise SynthesisError(
                f"{inst.name}: {len(inst.inputs)}-input {inst.kind} survived "
                "decomposition"
            )
        table = lut_table_for_gate(inst.kind, len(inst.inputs))
        inputs = list(inst.inputs)
        output = inst.output
        name = inst.name
        netlist.remove_instance(inst)
        netlist.add_lut(inputs, table, name=name, output=output)


# ----------------------------------------------------------------------
# pass 3: single-fanout collapse
# ----------------------------------------------------------------------

def _collapse_lut_pairs(netlist: Netlist) -> None:
    """Merge driver LUTs with single fanout into their consumer when the
    merged support fits in four variables.  Runs to a fixpoint."""
    changed = True
    while changed:
        changed = False
        for consumer in list(netlist.instances()):
            if consumer.kind is not CellKind.LUT:
                continue
            if not netlist.has_instance(consumer.name):
                continue  # removed earlier in this sweep as a merge driver
            if netlist.instance(consumer.name) is not consumer:
                continue
            merged = _try_collapse_into(netlist, consumer)
            if merged:
                changed = True


def _try_collapse_into(netlist: Netlist, consumer: Instance) -> bool:
    for idx, net in enumerate(consumer.inputs):
        driver = net.driver
        if driver is None or driver.kind is not CellKind.LUT:
            continue
        if net.fanout != 1:
            continue
        support = [n for j, n in enumerate(consumer.inputs) if j != idx]
        merged_support = list(dict.fromkeys(support + driver.inputs))
        if len(merged_support) > LUT_MAX_INPUTS:
            continue
        table = _merged_table(consumer, driver, idx, merged_support)
        inputs = merged_support
        output = consumer.output
        name = consumer.name
        intermediate = driver.output
        netlist.remove_instance(consumer)
        netlist.remove_instance(driver)
        # drop only the now-dead wire between the pair; a blanket prune
        # here could also delete the saved output net before it is
        # reattached below
        if intermediate.driver is None and not intermediate.sinks:
            netlist.remove_net(intermediate)
        netlist.add_lut(inputs, table, name=name, output=output)
        return True
    return False


def _merged_table(
    consumer: Instance, driver: Instance, pin: int, merged_support: list
) -> int:
    """Truth table of consumer∘driver over the merged variable list."""
    k = len(merged_support)
    position = {net.name: j for j, net in enumerate(merged_support)}
    table = 0
    for minterm in range(1 << k):
        driver_in = [
            (minterm >> position[n.name]) & 1 for n in driver.inputs
        ]
        dval = eval_lut(driver.params["table"], driver_in, 1)
        consumer_in = []
        for j, net in enumerate(consumer.inputs):
            if j == pin:
                consumer_in.append(dval)
            else:
                consumer_in.append((minterm >> position[net.name]) & 1)
        if eval_lut(consumer.params["table"], consumer_in, 1):
            table |= 1 << minterm
    return table


# ----------------------------------------------------------------------
# pass 4: constants
# ----------------------------------------------------------------------

def _specialize_constants(netlist: Netlist) -> None:
    """Fold CONST0/CONST1 drivers into consuming LUT tables.

    Constants that still feed DFFs or primary outputs afterwards become
    zero-input LUTs so the fabric netlist has a uniform primitive set.
    """
    changed = True
    while changed:
        changed = False
        for inst in list(netlist.instances()):
            if inst.kind not in (CellKind.CONST0, CellKind.CONST1):
                continue
            value = 1 if inst.kind is CellKind.CONST1 else 0
            for sink, idx in list(inst.output.sinks):
                if sink.kind is CellKind.LUT:
                    _fold_constant_pin(netlist, sink, idx, value)
                    changed = True
            if inst.output.fanout == 0:
                netlist.remove_instance(inst)
                changed = True
    # survivors feed DFFs/outputs directly: lower to 0-input LUTs
    for inst in list(netlist.instances()):
        if inst.kind in (CellKind.CONST0, CellKind.CONST1):
            value = 1 if inst.kind is CellKind.CONST1 else 0
            output = inst.output
            name = inst.name
            netlist.remove_instance(inst)
            netlist.add_lut([], value, name=name, output=output)
    netlist.prune_dangling()


def _fold_constant_pin(
    netlist: Netlist, lut: Instance, pin: int, value: int
) -> None:
    """Shrink a LUT by fixing input ``pin`` to ``value``."""
    k = len(lut.inputs)
    old_table = lut.params["table"]
    new_inputs = [n for j, n in enumerate(lut.inputs) if j != pin]
    new_table = 0
    for minterm in range(1 << (k - 1)):
        full = 0
        out_pos = 0
        for j in range(k):
            if j == pin:
                bit = value
            else:
                bit = (minterm >> out_pos) & 1
                out_pos += 1
            full |= bit << j
        if (old_table >> full) & 1:
            new_table |= 1 << minterm
    output = lut.output
    name = lut.name
    netlist.remove_instance(lut)
    netlist.add_lut(new_inputs, new_table, name=name, output=output)


# ----------------------------------------------------------------------
# verification helper
# ----------------------------------------------------------------------

def _check_only_primitives(netlist: Netlist) -> None:
    allowed = {CellKind.INPUT, CellKind.OUTPUT, CellKind.LUT, CellKind.DFF}
    for inst in netlist.instances():
        if inst.kind not in allowed:
            raise SynthesisError(
                f"mapping left non-primitive {inst.kind} instance {inst.name}"
            )
