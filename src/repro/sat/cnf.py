"""CNF construction: variables, clauses, and a hashing gate builder.

Literals are DIMACS-style signed ints: ``+v`` is variable ``v`` true,
``-v`` is it false.  :class:`CNF` owns the variable counter and the
clause list; solvers attach to a CNF and *sync* — clauses appended
after a solve are picked up by the next solve, which is what makes the
CEGIS and per-output-miter loops incremental.

:class:`GateBuilder` is the construction discipline every encoder goes
through.  It never emits a gate blindly:

* **constant folding** — operands equal to the constant-true literal
  (allocated lazily, asserted by a unit clause) are folded away, so a
  circuit applied to a concrete stimulus collapses to the tiny cone
  that actually depends on free variables;
* **structural hashing** — each (operation, operand-literals) node is
  built once and memoized, so two structurally identical circuits
  encoded through one builder share variables.  A miter between a
  corrected netlist and its golden twin then reduces to constant-false
  difference bits *before the solver ever runs* — the SAT-sweeping
  effect the formal verify mode leans on.

Truth-table (LUT) nodes additionally normalize input polarity and drop
constant and don't-care inputs, so the common post-ECO patterns
(inverter absorbed into a table, retabled LUT) still hash onto their
twins.
"""

from __future__ import annotations

from repro.errors import ReproError


class SatError(ReproError):
    """The SAT layer was driven with inconsistent inputs."""


class CNF:
    """A growing clause database over ``1..n_vars``.

    ``clauses`` is append-only; :class:`repro.sat.solver.Solver` keeps a
    cursor into it so late additions are solved incrementally.
    """

    __slots__ = ("n_vars", "clauses", "_true")

    def __init__(self) -> None:
        self.n_vars = 0
        self.clauses: list[tuple[int, ...]] = []
        self._true: int | None = None

    def new_var(self) -> int:
        self.n_vars += 1
        return self.n_vars

    @property
    def true(self) -> int:
        """The constant-true literal (allocated and asserted lazily)."""
        if self._true is None:
            self._true = self.new_var()
            self.clauses.append((self._true,))
        return self._true

    def add_clause(self, lits) -> None:
        """Append one clause (an iterable of non-zero signed ints)."""
        clause = tuple(lits)
        for lit in clause:
            if lit == 0 or abs(lit) > self.n_vars:
                raise SatError(f"literal {lit} out of range (n_vars={self.n_vars})")
        self.clauses.append(clause)


class GateBuilder:
    """Structurally-hashed, constant-folding gate construction over a CNF."""

    def __init__(self, cnf: CNF | None = None) -> None:
        self.cnf = cnf if cnf is not None else CNF()
        self._nodes: dict[tuple, int] = {}

    # -- constants -----------------------------------------------------

    @property
    def true(self) -> int:
        return self.cnf.true

    @property
    def false(self) -> int:
        return -self.cnf.true

    def const(self, bit: int) -> int:
        return self.true if bit else self.false

    def is_const(self, lit: int) -> bool:
        return self.cnf._true is not None and abs(lit) == self.cnf._true

    def const_value(self, lit: int) -> int | None:
        """0/1 for a constant literal, ``None`` for a free one."""
        if not self.is_const(lit):
            return None
        return 1 if lit > 0 else 0

    # -- clause emission -----------------------------------------------

    def clause(self, lits) -> None:
        """Add a clause, folding constant literals first."""
        out = []
        t = self.cnf._true
        for lit in lits:
            if t is not None:
                if lit == t:
                    return  # satisfied by the constant
                if lit == -t:
                    continue  # dropped
            out.append(lit)
        self.cnf.add_clause(out)

    # -- primitive nodes -----------------------------------------------

    def lit_not(self, lit: int) -> int:
        return -lit

    def lit_and(self, lits) -> int:
        """Conjunction with folding: drops trues, dedupes, spots a&~a."""
        kept: list[int] = []
        seen: set[int] = set()
        for lit in lits:
            value = self.const_value(lit)
            if value == 0:
                return self.false
            if value == 1:
                continue
            if lit in seen:
                continue
            if -lit in seen:
                return self.false
            seen.add(lit)
            kept.append(lit)
        if not kept:
            return self.true
        if len(kept) == 1:
            return kept[0]
        kept.sort()
        key = ("and", tuple(kept))
        hit = self._nodes.get(key)
        if hit is not None:
            return hit
        out = self.cnf.new_var()
        for lit in kept:
            self.cnf.add_clause((-out, lit))
        self.cnf.add_clause(tuple([out] + [-lit for lit in kept]))
        self._nodes[key] = out
        return out

    def lit_or(self, lits) -> int:
        return -self.lit_and([-lit for lit in lits])

    def lit_xor(self, lits) -> int:
        """Parity, built as a hashed chain of 2-input XOR nodes."""
        acc = self.false
        for lit in lits:
            acc = self._xor2(acc, lit)
        return acc

    def _xor2(self, a: int, b: int) -> int:
        va, vb = self.const_value(a), self.const_value(b)
        if va is not None:
            return -b if va else b
        if vb is not None:
            return -a if vb else a
        if a == b:
            return self.false
        if a == -b:
            return self.true
        # normalize: xor(-a, b) == -xor(a, b); operands unordered
        sign = 1
        if a < 0:
            a, sign = -a, -sign
        if b < 0:
            b, sign = -b, -sign
        if a > b:
            a, b = b, a
        key = ("xor", a, b)
        hit = self._nodes.get(key)
        if hit is not None:
            return sign * hit
        out = self.cnf.new_var()
        self.cnf.add_clause((-a, -b, -out))
        self.cnf.add_clause((a, b, -out))
        self.cnf.add_clause((a, -b, out))
        self.cnf.add_clause((-a, b, out))
        self._nodes[key] = out
        return sign * out

    def lit_mux(self, sel: int, d0: int, d1: int) -> int:
        """``sel ? d1 : d0`` (the MUX2 port convention)."""
        vs = self.const_value(sel)
        if vs is not None:
            return d1 if vs else d0
        if d0 == d1:
            return d0
        if sel < 0:
            sel, d0, d1 = -sel, d1, d0
        v0, v1 = self.const_value(d0), self.const_value(d1)
        if v0 is not None:
            return self.lit_and([sel, d1]) if v0 == 0 else self.lit_or([-sel, d1])
        if v1 is not None:
            return self.lit_and([-sel, d0]) if v1 == 0 else self.lit_or([sel, d0])
        if d0 == -d1:
            return self._xor2(sel, d0)
        key = ("mux", sel, d0, d1)
        hit = self._nodes.get(key)
        if hit is not None:
            return hit
        out = self.cnf.new_var()
        self.cnf.add_clause((-sel, -d1, out))
        self.cnf.add_clause((-sel, d1, -out))
        self.cnf.add_clause((sel, -d0, out))
        self.cnf.add_clause((sel, d0, -out))
        # redundant but propagation-strengthening
        self.cnf.add_clause((-d0, -d1, out))
        self.cnf.add_clause((d0, d1, -out))
        self._nodes[key] = out
        return out

    def lit_lut(self, table: int, lits) -> int:
        """A k-input truth table applied to literals.

        Bit ``m`` of ``table`` is the output for minterm ``m`` (input
        ``j`` contributing bit ``j``, matching
        :func:`repro.netlist.cells.eval_lut`).  Constant inputs are
        cofactored away, don't-care inputs dropped, and input polarity
        normalized before hashing.
        """
        lits = list(lits)
        # cofactor out constant inputs
        j = 0
        while j < len(lits):
            value = self.const_value(lits[j])
            if value is None:
                j += 1
                continue
            table = _cofactor(table, len(lits), j, value)
            del lits[j]
        # drop inputs the table does not depend on
        j = 0
        while j < len(lits):
            if _cofactor(table, len(lits), j, 0) == _cofactor(table, len(lits), j, 1):
                table = _cofactor(table, len(lits), j, 0)
                del lits[j]
            else:
                j += 1
        # normalize input polarity: a negated operand flips its variable
        for j, lit in enumerate(lits):
            if lit < 0:
                table = _flip_var(table, len(lits), j)
                lits[j] = -lit
        k = len(lits)
        size = 1 << k
        full = (1 << size) - 1
        if k == 0:
            return self.const(table & 1)
        if table == 0:
            return self.false
        if table == full:
            return self.true
        if k == 1:
            return lits[0] if table == 0b10 else -lits[0]
        if k == 2:
            # after constant/support/polarity normalization every
            # remaining 2-input table is an AND or XOR shape; canonical
            # nodes let mapped LUTs hash onto plain-gate encodings
            ones = table & 0b1111
            if ones == 0b0110:
                return self._xor2(lits[0], lits[1])
            if ones == 0b1001:
                return -self._xor2(lits[0], lits[1])
            count = bin(ones).count("1")
            if count == 1:
                m = ones.bit_length() - 1
                return self.lit_and(
                    [lits[0] if m & 1 else -lits[0],
                     lits[1] if m & 2 else -lits[1]]
                )
            if count == 3:
                m = (~ones & 0b1111).bit_length() - 1
                return -self.lit_and(
                    [lits[0] if m & 1 else -lits[0],
                     lits[1] if m & 2 else -lits[1]]
                )
        key = ("lut", k, table, tuple(lits))
        hit = self._nodes.get(key)
        if hit is not None:
            return hit
        out = self.cnf.new_var()
        for minterm in range(size):
            clause = [
                -lits[j] if (minterm >> j) & 1 else lits[j] for j in range(k)
            ]
            clause.append(out if (table >> minterm) & 1 else -out)
            self.cnf.add_clause(tuple(clause))
        self._nodes[key] = out
        return out


def add_at_most_k(cnf: CNF, lits, k: int) -> None:
    """Constrain at most ``k`` of ``lits`` to be true.

    Sinz's sequential-counter encoding (LTseq): auxiliary registers
    ``s[i][j]`` mean "at least ``j+1`` of the first ``i+1`` literals are
    true"; one clause per (literal, count) pair propagates the partial
    sums and one blocks the overflow.  O(n·k) variables and clauses,
    and unit propagation alone enforces the bound — which is what the
    multi-error diagnosis queries lean on: with ``j`` selector
    assumptions already true, propagation immediately forces the other
    selectors false once ``j == k``.
    """
    lits = list(lits)
    n = len(lits)
    if k < 0:
        raise SatError(f"cardinality bound must be >= 0, got {k}")
    if k == 0:
        for lit in lits:
            cnf.add_clause((-lit,))
        return
    if n <= k:
        return  # vacuous
    s = [[cnf.new_var() for _ in range(k)] for _ in range(n - 1)]
    cnf.add_clause((-lits[0], s[0][0]))
    for j in range(1, k):
        cnf.add_clause((-s[0][j],))
    for i in range(1, n - 1):
        cnf.add_clause((-lits[i], s[i][0]))
        cnf.add_clause((-s[i - 1][0], s[i][0]))
        for j in range(1, k):
            cnf.add_clause((-lits[i], -s[i - 1][j - 1], s[i][j]))
            cnf.add_clause((-s[i - 1][j], s[i][j]))
        cnf.add_clause((-lits[i], -s[i - 1][k - 1]))
    cnf.add_clause((-lits[n - 1], -s[n - 2][k - 1]))


def _cofactor(table: int, k: int, j: int, value: int) -> int:
    """The (k-1)-input table with input ``j`` fixed to ``value``."""
    out = 0
    for minterm in range(1 << (k - 1)):
        low = minterm & ((1 << j) - 1)
        high = minterm >> j
        source = low | (value << j) | (high << (j + 1))
        if (table >> source) & 1:
            out |= 1 << minterm
    return out


def _flip_var(table: int, k: int, j: int) -> int:
    """The table after complementing input variable ``j``."""
    out = 0
    for minterm in range(1 << k):
        if (table >> minterm) & 1:
            out |= 1 << (minterm ^ (1 << j))
    return out
