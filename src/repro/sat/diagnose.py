"""SAT-guided suspect pruning for the ``"sat"`` localization strategy.

Cone bisection pays one tile-confined P&R commit per bit of
information.  This module extracts information that is *free* of
commits: before each probe, it asks the solver whether the round's
observed discrepancies could even be explained by an error behind a
given suspect, and discards whole cone subsets when the answer is no.

The encoding is the rtl-repair-style relaxation.  The *golden* netlist
is unrolled to the first observed failure cycle with the round's
stimulus applied as constants (so everything upstream of the suspects
constant-folds away), and each selected suspect LUT ``c`` is
MUX-relaxed: its output becomes ``s_c ? free_{c,t} : original``, with
the selector variables ``s_c`` driven by solver assumptions.  The
observations — every functional primary-output value the DUT actually
produced up to that cycle, plus every probe that *matched* golden so
far — are asserted as unit clauses.

**Single-fault mode** (``n_errors == 1``, the historical behavior):
for one suspect at a time the solver is asked — *with only ``c``
freed, can the golden circuit reproduce what the DUT did?*

* **SAT** — an error influencing the observations only through ``c``
  remains possible; ``c`` stays.
* **UNSAT** — no behavior at ``c``'s output explains the observations,
  so the real error must reach an observation point along a path that
  avoids ``c``.  Every candidate whose observation paths *all* run
  through ``c`` (computed by a reverse reachability walk over the DUT
  with ``c`` deleted) is eliminated in one stroke — including ``c``
  itself, since an error *at* ``c`` is a special case of freeing it.

**Multi-fault mode** (``n_errors == k > 1``): one freed output can no
longer explain interacting faults, so *every* eligible golden instance
gets a selector and a sequential-counter cardinality constraint
(:func:`repro.sat.cnf.add_at_most_k`) caps the number of simultaneous
relaxations at ``k``.  The per-suspect query forces ``s_c`` true and
lets the solver spend the remaining ``k-1`` frees anywhere.  UNSAT is
then a statement about candidate *sets*: if any true error were
dominated by ``c``, freeing ``c`` would stand in for it and the other
true errors could claim their own selectors — the query would be SAT.
So an UNSAT still soundly eliminates exactly the cone subset dominated
by ``c``, for any number of injected faults up to ``k``.

:meth:`SuspectPruner.rank_pairs` runs the complementary k-subset query:
free *exactly* a candidate pair ``{a, b}`` (all other selectors
assumed false) and ask whether the pair jointly explains every
observation.  SAT pairs are feasible joint diagnoses, ranked for the
CEGIS correction stage; an UNSAT refutes the *set* — it can never
contain the complete true error set, because freeing a superset of the
true sites always admits the DUT's actual behavior.

The pruner is engine-independent (pure name sets and netlist walks) and
deterministic: suspect selection order, pattern choice, and the seeded
solver are all functions of the run's inputs, which is what keeps the
``"sat"`` strategy's probe trajectory bit-reproducible.
"""

from __future__ import annotations

from repro.debug.detect import Mismatch
from repro.netlist.cones import ConeIndex
from repro.netlist.core import Netlist, port_name
from repro.resilience.budget import check_deadline
from repro.rng import derive_seed
from repro.sat.cnf import CNF, GateBuilder, add_at_most_k
from repro.sat.encode import CircuitEncoder
from repro.sat.solver import Solver


class SuspectPruner:
    """Per-localization helper; one instance drives every probe round.

    ``n_errors`` is the number of faults the diagnosis must account for
    simultaneously — the cardinality bound of the relaxation.
    ``max_relax`` caps the multi-fault encoding: when the golden
    netlist has more eligible instances than this, multi-fault pruning
    is skipped (soundly — skipping never eliminates anything).
    """

    def __init__(
        self,
        dut: Netlist,
        golden: Netlist,
        stimulus: list[dict[str, int]],
        mismatches: list[Mismatch],
        golden_history: list[dict[str, int]],
        max_checks: int = 4,
        seed: int = 0,
        n_errors: int = 1,
        max_relax: int = 1200,
    ) -> None:
        self.dut = dut
        self.golden = golden
        self.stimulus = stimulus
        self.golden_history = golden_history
        self.max_checks = max_checks
        self.seed = seed
        self.n_errors = max(1, n_errors)
        self.max_relax = max_relax
        first = min(mismatches, key=lambda m: (m.cycle, m.output))
        #: observation window: frames 0..cycle inclusive
        self.cycle = first.cycle
        #: the single pattern the encoding reasons about — the lowest
        #: failing bit of the earliest mismatch
        self.pattern = (first.diff_mask & -first.diff_mask).bit_length() - 1
        self._diff = {(m.cycle, m.output): m.diff_mask for m in mismatches}
        self._out_net = {
            port_name(po): po.inputs[0].name
            for po in golden.primary_outputs()
        }
        #: counters surfaced through LocalizationResult
        self.n_checks = 0
        self.n_unsat = 0
        #: k-subset queries (pair ranking) made / refuted
        self.n_subset_checks = 0
        self.n_subset_refuted = 0
        self._round = 0
        # suspect scoring only reads candidate fanin cones, and probe
        # instrumentation added between rounds taps nets strictly
        # downstream of them — one index serves every round
        self._cones = ConeIndex(dut, stop_at_ffs=False)

    # ------------------------------------------------------------------

    def prune(
        self, candidates: set[str], matched_probes: list[str]
    ) -> set[str]:
        """Candidates provably unable to explain the observations."""
        if len(candidates) <= 1:
            return set()
        checked = self._select_suspects(candidates)
        if not checked:
            return set()
        relaxed = checked
        if self.n_errors > 1:
            relaxed = self._eligible_instances()
            if not relaxed or len(relaxed) > self.max_relax:
                return set()  # encoding too large; skip (sound)
        self._round += 1
        gb, enc, selector = self._build_encoding(relaxed, matched_probes)
        if self.n_errors > 1:
            add_at_most_k(gb.cnf, [selector[n] for n in relaxed],
                          self.n_errors)

        solver = Solver(
            gb.cnf, seed=derive_seed(self.seed, "sat.diagnose", self._round)
        )
        eliminated: set[str] = set()
        for name in checked:
            check_deadline("sat.prune")
            if name in eliminated:
                continue
            if self.n_errors == 1:
                assumptions = [selector[name]] + [
                    -selector[other] for other in checked if other != name
                ]
            else:
                # force c freed; the cardinality constraint rations the
                # remaining k-1 relaxations over everything else
                assumptions = [selector[name]]
            self.n_checks += 1
            if solver.solve(assumptions):
                continue
            self.n_unsat += 1
            reachable = self._reach_avoiding(name, matched_probes)
            subset = candidates - reachable - eliminated
            # a sound elimination can never drain the candidate set;
            # if it would, distrust this verdict and keep the suspects
            if subset and (candidates - eliminated - subset):
                eliminated |= subset
        return eliminated

    # ------------------------------------------------------------------

    def rank_pairs(
        self,
        candidates: set[str],
        matched_probes: list[str],
        limit: int = 6,
    ) -> tuple[list[tuple[str, str]], list[tuple[str, str]]]:
        """Judge candidate pairs as complete two-fault explanations.

        Frees exactly ``{a, b}`` per query (every other selector
        assumed false) against the full observation set.  Returns
        ``(feasible, refuted)``: feasible pairs ordered by joint cone
        coverage (the CEGIS correction tries them in this order),
        refuted pairs soundly excluded as joint diagnoses.
        """
        eligible = [
            name for name in self._suspect_order(candidates)
        ][:limit]
        if len(eligible) < 2:
            return [], []
        self._round += 1
        gb, enc, selector = self._build_encoding(eligible, matched_probes)
        solver = Solver(
            gb.cnf,
            seed=derive_seed(self.seed, "sat.diagnose.pairs", self._round),
        )
        feasible: list[tuple[str, str]] = []
        refuted: list[tuple[str, str]] = []
        for i in range(len(eligible)):
            check_deadline("sat.rank_pairs")
            for j in range(i + 1, len(eligible)):
                a, b = eligible[i], eligible[j]
                assumptions = [selector[a], selector[b]] + [
                    -selector[c] for c in eligible if c not in (a, b)
                ]
                self.n_subset_checks += 1
                if solver.solve(assumptions):
                    feasible.append((a, b))
                else:
                    self.n_subset_refuted += 1
                    refuted.append((a, b))
        return feasible, refuted

    # ------------------------------------------------------------------

    def _build_encoding(self, relaxed, matched_probes):
        """Golden unrolled to the failure cycle with ``relaxed`` freed."""
        gb = GateBuilder(CNF())
        p = self.pattern

        def const_input(port: str, frame: int) -> int:
            word = self.stimulus[frame].get(port, 0)
            return gb.const((word >> p) & 1)

        selector = {name: gb.cnf.new_var() for name in relaxed}
        free_vars: dict[tuple[str, int], int] = {}

        def relax(inst, frame, in_lits, lit):
            sel = selector.get(inst.name)
            if sel is None:
                return lit
            free = free_vars.get((inst.name, frame))
            if free is None:
                free = gb.cnf.new_var()
                free_vars[(inst.name, frame)] = free
            return gb.lit_mux(sel, lit, free)

        enc = CircuitEncoder(self.golden, gb, inputs=const_input, relax=relax)
        self._assert_observations(gb, enc, matched_probes)
        return gb, enc, selector

    def _eligible_instances(self) -> list[str]:
        """Every golden instance that could host a fault, sorted."""
        out = []
        for inst in self.golden.instances():
            if inst.is_io or inst.is_ff or inst.output is None:
                continue
            out.append(inst.name)
        out.sort()
        return out

    def _suspect_order(self, candidates: set[str]) -> list[str]:
        """Candidates by descending candidate-cone coverage."""
        cones = self._cones
        golden = self.golden
        cand_mask = 0
        for name in candidates:
            if cones.has(name):
                cand_mask |= 1 << cones.bit(name)
        scored: list[tuple[int, str]] = []
        for name in sorted(candidates):
            if not golden.has_instance(name):
                continue
            inst = golden.instance(name)
            if inst.is_io or inst.is_ff or inst.output is None:
                continue
            if not cones.has(name):
                continue
            score = (cones.fanin(name) & cand_mask).bit_count()
            scored.append((-score, name))
        scored.sort()
        return [name for _, name in scored]

    def _select_suspects(self, candidates: set[str]) -> list[str]:
        """The suspects worth a solver call: largest candidate fanin
        first — the cuts whose UNSAT eliminates the most at once."""
        return self._suspect_order(candidates)[: self.max_checks]

    def _assert_observations(
        self, gb: GateBuilder, enc: CircuitEncoder, matched_probes: list[str]
    ) -> None:
        """Unit-clause everything the DUT run actually showed us."""
        p = self.pattern
        for t in range(self.cycle + 1):
            values = self.golden_history[t]
            for port in sorted(self._out_net):
                net = self._out_net[port]
                bit = (values[net] >> p) & 1
                diff = self._diff.get((t, port), 0)
                if (diff >> p) & 1:
                    bit ^= 1  # the DUT disagreed here — observe *its* value
                lit = enc.output_lit(port, t)
                gb.clause([lit] if bit else [-lit])
            for net in sorted(set(matched_probes)):
                # a "match" probe verdict certifies the DUT carried the
                # golden value on this net at every cycle and pattern
                if not self.golden.has_net(net):
                    continue
                bit = (values.get(net, 0) >> p) & 1
                lit = enc.net_lit(net, t)
                gb.clause([lit] if bit else [-lit])

    def _reach_avoiding(self, removed: str, matched_probes: list[str]) -> set[str]:
        """DUT instances that reach an observation point without passing
        through ``removed`` — the suspects an UNSAT at ``removed``
        cannot clear."""
        dut = self.dut
        seeds = []
        for po in dut.primary_outputs():
            if port_name(po) not in self._out_net:
                continue  # instrumentation output, not observed here
            driver = po.inputs[0].driver
            if driver is not None and driver.name != removed:
                seeds.append(driver)
        for net in set(matched_probes):
            if not dut.has_net(net):
                continue
            driver = dut.net(net).driver
            if driver is not None and driver.name != removed:
                seeds.append(driver)
        seen: set[str] = set()
        work = list(seeds)
        while work:
            inst = work.pop()
            if inst.name in seen:
                continue
            seen.add(inst.name)
            for net in inst.inputs:
                driver = net.driver
                if driver is None or driver.name == removed:
                    continue
                if driver.name not in seen:
                    work.append(driver)
        return seen
