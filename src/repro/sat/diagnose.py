"""SAT-guided suspect pruning for the ``"sat"`` localization strategy.

Cone bisection pays one tile-confined P&R commit per bit of
information.  This module extracts information that is *free* of
commits: before each probe, it asks the solver whether the round's
observed discrepancies could even be explained by an error behind a
given suspect, and discards whole cone subsets when the answer is no.

The encoding is the rtl-repair-style relaxation.  The *golden* netlist
is unrolled to the first observed failure cycle with the round's
stimulus applied as constants (so everything upstream of the suspects
constant-folds away), and each selected suspect LUT ``c`` is
MUX-relaxed: its output becomes ``s_c ? free_{c,t} : original``, with
the one-hot selector variables ``s_c`` driven by solver assumptions.
The observations — every functional primary-output value the DUT
actually produced up to that cycle, plus every probe that *matched*
golden so far — are asserted as unit clauses.

For one suspect at a time the solver is asked: *with only ``c`` freed,
can the golden circuit reproduce what the DUT did?*

* **SAT** — an error influencing the observations only through ``c``
  remains possible; ``c`` stays.
* **UNSAT** — no behavior at ``c``'s output explains the observations,
  so the real error must reach an observation point along a path that
  avoids ``c``.  Every candidate whose observation paths *all* run
  through ``c`` (computed by a reverse reachability walk over the DUT
  with ``c`` deleted) is eliminated in one stroke — including ``c``
  itself, since an error *at* ``c`` is a special case of freeing it.

The pruner is engine-independent (pure name sets and netlist walks) and
deterministic: suspect selection order, pattern choice, and the seeded
solver are all functions of the run's inputs, which is what keeps the
``"sat"`` strategy's probe trajectory bit-reproducible.
"""

from __future__ import annotations

from repro.debug.detect import Mismatch
from repro.netlist.cones import ConeIndex
from repro.netlist.core import Netlist, port_name
from repro.rng import derive_seed
from repro.sat.cnf import CNF, GateBuilder
from repro.sat.encode import CircuitEncoder
from repro.sat.solver import Solver


class SuspectPruner:
    """Per-localization helper; one instance drives every probe round."""

    def __init__(
        self,
        dut: Netlist,
        golden: Netlist,
        stimulus: list[dict[str, int]],
        mismatches: list[Mismatch],
        golden_history: list[dict[str, int]],
        max_checks: int = 4,
        seed: int = 0,
    ) -> None:
        self.dut = dut
        self.golden = golden
        self.stimulus = stimulus
        self.golden_history = golden_history
        self.max_checks = max_checks
        self.seed = seed
        first = min(mismatches, key=lambda m: (m.cycle, m.output))
        #: observation window: frames 0..cycle inclusive
        self.cycle = first.cycle
        #: the single pattern the encoding reasons about — the lowest
        #: failing bit of the earliest mismatch
        self.pattern = (first.diff_mask & -first.diff_mask).bit_length() - 1
        self._diff = {(m.cycle, m.output): m.diff_mask for m in mismatches}
        self._out_net = {
            port_name(po): po.inputs[0].name
            for po in golden.primary_outputs()
        }
        #: counters surfaced through LocalizationResult
        self.n_checks = 0
        self.n_unsat = 0
        self._round = 0
        # suspect scoring only reads candidate fanin cones, and probe
        # instrumentation added between rounds taps nets strictly
        # downstream of them — one index serves every round
        self._cones = ConeIndex(dut, stop_at_ffs=False)

    # ------------------------------------------------------------------

    def prune(
        self, candidates: set[str], matched_probes: list[str]
    ) -> set[str]:
        """Candidates provably unable to explain the observations."""
        if len(candidates) <= 1:
            return set()
        checked = self._select_suspects(candidates)
        if not checked:
            return set()
        self._round += 1
        gb = GateBuilder(CNF())
        p = self.pattern

        def const_input(port: str, frame: int) -> int:
            word = self.stimulus[frame].get(port, 0)
            return gb.const((word >> p) & 1)

        selector = {name: gb.cnf.new_var() for name in checked}
        free_vars: dict[tuple[str, int], int] = {}

        def relax(inst, frame, in_lits, lit):
            sel = selector.get(inst.name)
            if sel is None:
                return lit
            free = free_vars.get((inst.name, frame))
            if free is None:
                free = gb.cnf.new_var()
                free_vars[(inst.name, frame)] = free
            return gb.lit_mux(sel, lit, free)

        enc = CircuitEncoder(self.golden, gb, inputs=const_input, relax=relax)
        self._assert_observations(gb, enc, matched_probes)

        solver = Solver(
            gb.cnf, seed=derive_seed(self.seed, "sat.diagnose", self._round)
        )
        eliminated: set[str] = set()
        for name in checked:
            if name in eliminated:
                continue
            assumptions = [selector[name]] + [
                -selector[other] for other in checked if other != name
            ]
            self.n_checks += 1
            if solver.solve(assumptions):
                continue
            self.n_unsat += 1
            reachable = self._reach_avoiding(name, matched_probes)
            subset = candidates - reachable - eliminated
            # a sound elimination can never drain the candidate set;
            # if it would, distrust this verdict and keep the suspects
            if subset and (candidates - eliminated - subset):
                eliminated |= subset
        return eliminated

    # ------------------------------------------------------------------

    def _select_suspects(self, candidates: set[str]) -> list[str]:
        """The suspects worth a solver call: largest candidate fanin
        first — the cuts whose UNSAT eliminates the most at once."""
        cones = self._cones
        golden = self.golden
        cand_mask = 0
        for name in candidates:
            if cones.has(name):
                cand_mask |= 1 << cones.bit(name)
        scored: list[tuple[int, str]] = []
        for name in sorted(candidates):
            if not golden.has_instance(name):
                continue
            inst = golden.instance(name)
            if inst.is_io or inst.is_ff or inst.output is None:
                continue
            if not cones.has(name):
                continue
            score = (cones.fanin(name) & cand_mask).bit_count()
            scored.append((-score, name))
        scored.sort()
        return [name for _, name in scored[: self.max_checks]]

    def _assert_observations(
        self, gb: GateBuilder, enc: CircuitEncoder, matched_probes: list[str]
    ) -> None:
        """Unit-clause everything the DUT run actually showed us."""
        p = self.pattern
        for t in range(self.cycle + 1):
            values = self.golden_history[t]
            for port in sorted(self._out_net):
                net = self._out_net[port]
                bit = (values[net] >> p) & 1
                diff = self._diff.get((t, port), 0)
                if (diff >> p) & 1:
                    bit ^= 1  # the DUT disagreed here — observe *its* value
                lit = enc.output_lit(port, t)
                gb.clause([lit] if bit else [-lit])
            for net in sorted(set(matched_probes)):
                # a "match" probe verdict certifies the DUT carried the
                # golden value on this net at every cycle and pattern
                if not self.golden.has_net(net):
                    continue
                bit = (values.get(net, 0) >> p) & 1
                lit = enc.net_lit(net, t)
                gb.clause([lit] if bit else [-lit])

    def _reach_avoiding(self, removed: str, matched_probes: list[str]) -> set[str]:
        """DUT instances that reach an observation point without passing
        through ``removed`` — the suspects an UNSAT at ``removed``
        cannot clear."""
        dut = self.dut
        seeds = []
        for po in dut.primary_outputs():
            if port_name(po) not in self._out_net:
                continue  # instrumentation output, not observed here
            driver = po.inputs[0].driver
            if driver is not None and driver.name != removed:
                seeds.append(driver)
        for net in set(matched_probes):
            if not dut.has_net(net):
                continue
            driver = dut.net(net).driver
            if driver is not None and driver.name != removed:
                seeds.append(driver)
        seen: set[str] = set()
        work = list(seeds)
        while work:
            inst = work.pop()
            if inst.name in seen:
                continue
            seen.add(inst.name)
            for net in inst.inputs:
                driver = net.driver
                if driver is None or driver.name == removed:
                    continue
                if driver.name not in seen:
                    work.append(driver)
        return seen
