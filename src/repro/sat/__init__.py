"""Boolean-satisfiability layer: CDCL solving over CNF netlist encodings.

The simulation substrate answers "what does the circuit do on *these*
patterns"; this package answers "is there *any* pattern" — the
qualitative jump from stimulus-driven confidence to proof.  Three
pieces, layered bottom-up:

* :mod:`repro.sat.solver` — a pure-python CDCL solver (two-watched-
  literal propagation, 1-UIP clause learning, VSIDS activity, Luby
  restarts, incremental solving under assumptions; deterministic for a
  given seed);
* :mod:`repro.sat.cnf` — CNF construction through a structurally-
  hashing, constant-folding :class:`GateBuilder`, so identical logic in
  two circuits collapses onto shared variables (the SAT-sweeping trick
  that makes miters of near-identical netlists near-trivial);
* :mod:`repro.sat.encode` — demand-driven Tseitin encoding of a
  :class:`~repro.netlist.core.Netlist`'s time-unrolling (LUTs and
  gates per frame, flip-flops stitched frame-to-frame, frame 0 at the
  reset state).

Consumers live beside the flows they serve:

* :mod:`repro.sat.equiv` — miter construction and bounded equivalence
  checking (``verify="prove"`` in the pipeline);
* :mod:`repro.sat.diagnose` — MUX-relaxed suspect pruning for the
  ``"sat"`` localization strategy;
* :mod:`repro.sat.cegis` — truth-table synthesis for
  :func:`repro.debug.correct.synthesize_lut_fix`.
"""

from repro.sat.cnf import CNF, GateBuilder, add_at_most_k
from repro.sat.encode import CircuitEncoder
from repro.sat.equiv import (
    ProofResult,
    counterexample_mismatches,
    prove_equivalence,
)
from repro.sat.solver import Solver, SolverStats

__all__ = [
    "CNF",
    "CircuitEncoder",
    "GateBuilder",
    "ProofResult",
    "Solver",
    "SolverStats",
    "add_at_most_k",
    "counterexample_mismatches",
    "prove_equivalence",
]
