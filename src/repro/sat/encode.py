"""Demand-driven Tseitin encoding of a netlist's time-unrolling.

A :class:`CircuitEncoder` maps ``(net, frame)`` pairs onto CNF literals
lazily: asking for an output at frame ``t`` pulls in exactly the
transitive fanin cone of that output across frames ``0..t`` and nothing
else.  That laziness is load-bearing three times over:

* per-output-cone miters (the formal verify mode) never pay for the
  outputs they are not checking;
* a stimulus applied as constants lets the :class:`GateBuilder` fold
  whole cones away, so the CEGIS encodings collapse to the few gates
  that actually depend on the unknown truth table;
* the diagnose encodings only materialize the frames up to the first
  observed failure.

Frame semantics match :class:`repro.netlist.simulate.SequentialSimulator`
exactly: combinational logic is evaluated per frame, a DFF's Q at frame
``t`` is its D literal at frame ``t-1``, and frame 0 starts from the
``init`` parameter — the same reset state
:func:`repro.netlist.simulate.initial_state` produces.

Inputs come from a pluggable provider (shared variables for miters,
constants for counterexample replay); a ``relax`` hook lets callers
substitute an instance's output literal (MUX-relaxed suspects in
:mod:`repro.sat.diagnose`, free truth tables in :mod:`repro.sat.cegis`).
"""

from __future__ import annotations

from typing import Callable

from repro.netlist.cells import CellKind, lut_table_for_gate
from repro.netlist.core import Instance, Netlist, port_name
from repro.sat.cnf import GateBuilder, SatError

#: ``relax(instance, frame, input_lits, lit) -> lit`` — observe or
#: replace a combinational instance's freshly computed output literal.
RelaxFn = Callable[[Instance, int, list[int], int], int]

#: ``inputs(port, frame) -> lit`` — literal feeding a primary input.
InputFn = Callable[[str, int], int]


class CircuitEncoder:
    """One netlist's unrolled encoding over a shared gate builder."""

    def __init__(
        self,
        netlist: Netlist,
        gb: GateBuilder,
        inputs: InputFn | None = None,
        relax: RelaxFn | None = None,
    ) -> None:
        self.netlist = netlist
        self.gb = gb
        self.relax = relax
        self._provider = inputs
        #: (port, frame) -> variable, for providers left to default
        self.input_vars: dict[tuple[str, int], int] = {}
        self._memo: dict[tuple[str, int], int] = {}
        self._outputs = {
            port_name(po): po.inputs[0].name
            for po in netlist.primary_outputs()
        }

    # -- ports ---------------------------------------------------------

    def output_names(self) -> list[str]:
        return sorted(self._outputs)

    def input_names(self) -> list[str]:
        return sorted(port_name(pi) for pi in self.netlist.primary_inputs())

    def output_lit(self, port: str, frame: int) -> int:
        try:
            net = self._outputs[port]
        except KeyError:
            raise SatError(
                f"{self.netlist.name} has no primary output {port!r}"
            ) from None
        return self.net_lit(net, frame)

    def input_lit(self, port: str, frame: int) -> int:
        if self._provider is not None:
            return self._provider(port, frame)
        key = (port, frame)
        var = self.input_vars.get(key)
        if var is None:
            var = self.gb.cnf.new_var()
            self.input_vars[key] = var
        return var

    # -- encoding ------------------------------------------------------

    def net_lit(self, net_name: str, frame: int) -> int:
        """The literal carrying ``net_name``'s value at ``frame``.

        Encodes the needed fanin cone on demand (iteratively — cone
        depth regularly exceeds the recursion limit).
        """
        if frame < 0:
            raise SatError(f"frame {frame} out of range")
        memo = self._memo
        key = (net_name, frame)
        hit = memo.get(key)
        if hit is not None:
            return hit
        netlist = self.netlist
        stack = [key]
        while stack:
            name, t = stack[-1]
            if (name, t) in memo:
                stack.pop()
                continue
            driver = netlist.net(name).driver
            if driver is None:
                # undriven nets read as 0, matching the emulator's
                # default for missing stimulus
                memo[(name, t)] = self.gb.false
                stack.pop()
                continue
            kind = driver.kind
            if kind is CellKind.INPUT:
                memo[(name, t)] = self.input_lit(port_name(driver), t)
                stack.pop()
                continue
            if kind is CellKind.DFF:
                if t == 0:
                    memo[(name, t)] = self.gb.const(
                        driver.params.get("init", 0)
                    )
                    stack.pop()
                    continue
                dep = (driver.inputs[0].name, t - 1)
                if dep not in memo:
                    stack.append(dep)
                    continue
                memo[(name, t)] = memo[dep]
                stack.pop()
                continue
            deps = [(net.name, t) for net in driver.inputs]
            missing = [d for d in deps if d not in memo]
            if missing:
                stack.extend(missing)
                continue
            in_lits = [memo[d] for d in deps]
            lit = _encode_cell(self.gb, driver, in_lits)
            if self.relax is not None:
                lit = self.relax(driver, t, in_lits, lit)
            memo[(name, t)] = lit
            stack.pop()
        return memo[key]


def _encode_cell(gb: GateBuilder, inst: Instance, lits: list[int]) -> int:
    kind = inst.kind
    if kind is CellKind.LUT:
        return gb.lit_lut(inst.params.get("table", 0), lits)
    if kind is CellKind.CONST0:
        return gb.false
    if kind is CellKind.CONST1:
        return gb.true
    if kind is CellKind.BUF:
        return lits[0]
    if kind is CellKind.NOT:
        return -lits[0]
    if kind is CellKind.AND:
        return gb.lit_and(lits)
    if kind is CellKind.OR:
        return gb.lit_or(lits)
    if kind is CellKind.NAND:
        return -gb.lit_and(lits)
    if kind is CellKind.NOR:
        return -gb.lit_or(lits)
    if kind is CellKind.XOR:
        return gb.lit_xor(lits)
    if kind is CellKind.XNOR:
        return -gb.lit_xor(lits)
    if kind is CellKind.MUX2:
        sel, d0, d1 = lits
        return gb.lit_mux(sel, d0, d1)
    if kind is CellKind.OUTPUT:
        return lits[0]
    # future cell kinds fall back to their truth table when small
    if len(lits) <= 4:
        return gb.lit_lut(lut_table_for_gate(kind, len(lits)), lits)
    raise SatError(f"cannot encode cell kind {kind}")
