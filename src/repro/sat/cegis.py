"""CEGIS truth-table synthesis: solve for LUTs that repair the DUT.

Counter-Example-Guided Inductive Synthesis over the smallest useful
hypothesis space — the ``2**k`` truth-table bits of the suspect LUTs.
Each suspect's table is replaced by free variables shared across every
encoding; each counterexample contributes one unrolled copy of the DUT
with the counterexample's stimulus applied as constants and the golden
output values asserted at every cycle of its window.  Because the
stimulus is constant, the gate builder folds each copy down to the
handful of literals that actually depend on the unknown tables — the
CNF stays tiny no matter how large the design is.

The loop is the classic alternation, run on one incremental solver:

1. **solve** — find tables consistent with every counterexample seen;
2. **simulate-check** — retable a scratch copy and run the *full*
   multi-pattern stimulus through the simulation kernel against golden;
3. **refine** — a surviving mismatch becomes a new counterexample
   constraint, plus a blocking clause on the failed joint assignment so
   progress is guaranteed even before the new constraint bites.

:func:`synthesize_table` repairs one LUT (the historical single-fault
entry point); :func:`synthesize_tables` repairs several *jointly* — one
shared solver, per-candidate table variables, one blocking clause over
the concatenated assignment — which is what interacting multi-error
rounds need: neither table alone clears the mismatches, but the pair
does.  ``target_outputs``/``ignore_outputs`` scope the specification to
the outputs a diagnosis round owns, so a repair is not rejected for
failing to fix a *different* fault's outputs.

UNSAT means no table assignment at these locations explains the
evidence — the caller moves to the next suspect set (or falls back to
back-annotation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from weakref import WeakKeyDictionary

from repro.debug.detect import Mismatch, compare_runs
from repro.netlist.cells import CellKind
from repro.netlist.core import Netlist, port_name
from repro.obs.metrics import METRICS
from repro.obs.trace import maybe_span
from repro.resilience.budget import check_deadline
from repro.rng import derive_seed
from repro.sat.cnf import CNF, GateBuilder, SatError
from repro.sat.encode import CircuitEncoder
from repro.sat.solver import Solver


@dataclass
class TableSynthesis:
    """Outcome of one suspect set's CEGIS run."""

    instance: str
    #: the verified replacement table, or None when no table works
    table: int | None
    #: solve→check→refine round trips taken
    iterations: int
    #: (cycle, output, pattern) counterexamples the loop accumulated
    counterexamples: list[tuple[int, str, int]] = field(default_factory=list)
    solver_stats: dict = field(default_factory=dict)
    #: every retabled instance, in candidate order (joint runs)
    instances: list[str] = field(default_factory=list)
    #: verified tables aligned with ``instances`` (empty on failure)
    tables: list[int] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.table is not None


#: per-golden memo of replay outputs; ``synthesize_lut_fix`` retries
#: many candidate groups against one (golden, stimulus) pair, and the
#: golden replay is identical across all of them
_GOLDEN_REPLAYS: "WeakKeyDictionary[Netlist, dict]" = WeakKeyDictionary()
_GOLDEN_REPLAY_LIMIT = 8


def _stimulus_key(stimulus: list[dict[str, int]]) -> tuple:
    """Hashable identity of a stimulus (cycle-ordered sorted items)."""
    return tuple(
        tuple(sorted(cycle.items())) for cycle in stimulus
    )


def _golden_replay(
    golden: Netlist,
    stimulus: list[dict[str, int]],
    n_patterns: int,
    engine: str,
) -> list[dict[str, int]]:
    """Memoized ``replay_outputs(golden, ...)`` — keyed per golden
    object by (revision, stimulus identity, n_patterns).

    The engine is excluded from the key on purpose: all engines are
    bit-identical, so a memo hit returns exactly what a fresh replay
    under any engine would.  The revision guard invalidates if a future
    code path ever mutates the shared golden.
    """
    from repro.netlist.simulate import replay_outputs

    per_golden = _GOLDEN_REPLAYS.get(golden)
    if per_golden is None:
        per_golden = _GOLDEN_REPLAYS[golden] = {}
    key = (golden.revision, _stimulus_key(stimulus), n_patterns)
    cached = per_golden.get(key)
    if cached is not None:
        METRICS.inc("repro_cegis_golden_replay_hits_total")
        return cached
    METRICS.inc("repro_cegis_golden_replay_misses_total")
    outputs = replay_outputs(golden, stimulus, n_patterns, engine=engine)
    if len(per_golden) >= _GOLDEN_REPLAY_LIMIT:
        per_golden.clear()
    per_golden[key] = outputs
    return outputs


def _first_failure(mismatches: list[Mismatch]) -> tuple[int, str, int]:
    first = min(mismatches, key=lambda m: (m.cycle, m.output))
    pattern = (first.diff_mask & -first.diff_mask).bit_length() - 1
    return first.cycle, first.output, pattern


def synthesize_table(
    netlist: Netlist,
    golden: Netlist,
    candidate: str,
    mismatches: list[Mismatch],
    stimulus: list[dict[str, int]],
    n_patterns: int,
    engine: str = "compiled",
    max_iterations: int = 12,
    seed: int = 0,
    ignore_outputs=None,
) -> TableSynthesis:
    """CEGIS a replacement truth table for ``candidate`` in ``netlist``.

    ``netlist`` is the faulty DUT (left unmodified — checks run on a
    scratch copy); ``golden`` supplies the intended behavior;
    ``mismatches`` seed the first counterexample.  Deterministic for a
    given seed.
    """
    return synthesize_tables(
        netlist, golden, [candidate], mismatches, stimulus, n_patterns,
        engine=engine, max_iterations=max_iterations, seed=seed,
        ignore_outputs=ignore_outputs,
    )


def synthesize_tables(
    netlist: Netlist,
    golden: Netlist,
    candidates: list[str],
    mismatches: list[Mismatch],
    stimulus: list[dict[str, int]],
    n_patterns: int,
    engine: str = "compiled",
    max_iterations: int = 12,
    seed: int = 0,
    ignore_outputs=None,
) -> TableSynthesis:
    """Jointly CEGIS replacement truth tables for every ``candidate``.

    All candidate LUTs get their own table variables on one shared
    solver; a satisfying assignment retables all of them at once and
    must survive the full-stimulus check together.  ``ignore_outputs``
    names primary outputs exempted from the specification (outputs a
    *different*, not-yet-fixed error owns in a multi-fault session) —
    they are neither asserted in counterexample encodings nor counted
    as check failures.  With one candidate and no exemptions this is
    bit-identical to the historical single-LUT loop.
    """
    candidates = list(candidates)
    if not candidates:
        raise SatError("CEGIS needs at least one candidate LUT")
    insts = []
    for name in candidates:
        inst = netlist.instance(name)
        if inst.kind is not CellKind.LUT or not inst.inputs:
            raise SatError(f"{name} is not a synthesizable LUT")
        insts.append(inst)
    if not mismatches:
        raise SatError("CEGIS needs at least one observed mismatch")
    ignore = set(ignore_outputs or ())
    mismatches = [m for m in mismatches if m.output not in ignore]
    if not mismatches:
        raise SatError("every mismatch lies on an ignored output")

    golden_out = _golden_replay(golden, stimulus, n_patterns, engine)
    gb = GateBuilder(CNF())
    table_map: dict[str, list[int]] = {}
    all_vars: list[int] = []
    for inst in insts:
        tvars = [gb.cnf.new_var() for _ in range(1 << len(inst.inputs))]
        table_map[inst.name] = tvars
        all_vars.extend(tvars)
    solver = Solver(
        gb.cnf,
        seed=derive_seed(seed, "sat.cegis", "+".join(candidates)),
    )
    result = TableSynthesis(
        instance=candidates[0], table=None, iterations=0,
        instances=list(candidates),
    )

    def add_counterexample(cycle: int, pattern: int) -> None:
        _encode_counterexample(
            gb, netlist, golden, table_map,
            stimulus, pattern, cycle, golden_out, ignore,
        )

    first_cycle, first_output, first_pattern = _first_failure(mismatches)
    result.counterexamples.append((first_cycle, first_output, first_pattern))
    add_counterexample(first_cycle, first_pattern)

    scratch = netlist.copy(f"{netlist.name}.cegis")
    scratch_insts = [scratch.instance(name) for name in candidates]
    while result.iterations < max_iterations:
        check_deadline("cegis.iteration")
        result.iterations += 1
        METRICS.inc("repro_cegis_iterations_total")
        with maybe_span("cegis_iter", category="sat",
                        iteration=result.iterations,
                        n_counterexamples=len(result.counterexamples)):
            if not solver.solve():
                break  # no table assignment consistent with the evidence
            tables = []
            for inst in insts:
                table = 0
                for m, var in enumerate(table_map[inst.name]):
                    if solver.lit_true(var):
                        table |= 1 << m
                tables.append(table)
            for scratch_inst, table in zip(scratch_insts, tables):
                scratch.set_params(scratch_inst, {"table": table})
            remaining = _check_against_golden(
                scratch, golden_out, stimulus, n_patterns, engine, ignore
            )
            if not remaining:
                result.table = tables[0]
                result.tables = tables
                break
            cycle, output, pattern = _first_failure(remaining)
            result.counterexamples.append((cycle, output, pattern))
            add_counterexample(cycle, pattern)
            # block the exact failed joint assignment: progress even
            # when the new counterexample window happens not to
            # constrain it
            blocked = []
            for inst, table in zip(insts, tables):
                blocked.extend(
                    -var if (table >> m) & 1 else var
                    for m, var in enumerate(table_map[inst.name])
                )
            gb.cnf.add_clause(blocked)
    result.solver_stats = solver.stats.snapshot()
    return result


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------

def _check_against_golden(
    scratch: Netlist,
    golden_out: list[dict[str, int]],
    stimulus,
    n_patterns: int,
    engine: str,
    ignore: set | None = None,
) -> list[Mismatch]:
    """Full-stimulus, all-patterns comparison of the retabled DUT."""
    from repro.netlist.simulate import replay_outputs

    remaining = compare_runs(
        replay_outputs(scratch, stimulus, n_patterns, engine=engine),
        golden_out,
    )
    if ignore:
        remaining = [m for m in remaining if m.output not in ignore]
    return remaining


def _encode_counterexample(
    gb: GateBuilder,
    netlist: Netlist,
    golden: Netlist,
    table_map: dict[str, list[int]],
    stimulus,
    pattern: int,
    cycle: int,
    golden_out: list[dict[str, int]],
    ignore: set,
) -> None:
    """One unrolled DUT copy under the counterexample's constants.

    Every suspect's output becomes its symbolic table lookup; every
    golden functional output value over frames ``0..cycle`` is asserted
    (except exempted outputs).
    """

    def const_input(port: str, frame: int) -> int:
        word = stimulus[frame].get(port, 0)
        return gb.const((word >> pattern) & 1)

    def relax(inst, frame, in_lits, lit):
        tvars = table_map.get(inst.name)
        if tvars is None:
            return lit
        return _symbolic_lut(gb, tvars, in_lits)

    enc = CircuitEncoder(netlist, gb, inputs=const_input, relax=relax)
    shared = {
        port_name(po) for po in golden.primary_outputs()
    } & set(enc.output_names())
    shared -= ignore
    for t in range(cycle + 1):
        for port in sorted(shared):
            bit = (golden_out[t][port] >> pattern) & 1
            lit = enc.output_lit(port, t)
            gb.clause([lit] if bit else [-lit])


def _symbolic_lut(gb: GateBuilder, table_vars: list[int], in_lits) -> int:
    """``out = table[inputs]`` with the table bits as variables.

    With constant inputs (the CEGIS case) this folds to the selected
    table variable itself; symbolic inputs get the full definition.
    """
    in_lits = list(in_lits)
    minterm = 0
    symbolic = False
    for j, lit in enumerate(in_lits):
        value = gb.const_value(lit)
        if value is None:
            symbolic = True
            break
        minterm |= value << j
    if not symbolic:
        return table_vars[minterm]
    out = gb.cnf.new_var()
    for m, tvar in enumerate(table_vars):
        match = gb.lit_and(
            [l if (m >> j) & 1 else -l for j, l in enumerate(in_lits)]
        )
        gb.clause([-match, -tvar, out])
        gb.clause([-match, tvar, -out])
    return out
