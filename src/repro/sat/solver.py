"""A pure-python CDCL SAT solver.

The classic architecture (MiniSat lineage), sized for the CNFs the
debug flow produces — miters whose structural hashing has already
collapsed the easy 95 %, relaxation queries over a few thousand
variables, and 16-variable truth-table synthesis:

* **two-watched-literal propagation** — each clause watches two
  literals; only clauses watching the falsified literal are visited;
* **1-UIP conflict analysis** — resolve the conflict clause backwards
  along the trail to the first unique implication point, learn the
  asserting clause, backjump non-chronologically;
* **VSIDS** — per-variable activity bumped during analysis and decayed
  geometrically; decisions pick the most active unassigned variable
  (ties break on the lowest index, keeping runs deterministic);
* **phase saving** — a backtracked variable remembers its last
  polarity and is re-decided there;
* **Luby restarts** — conflict budgets follow the Luby sequence times
  a base interval, the standard universal restart policy;
* **incremental solving under assumptions** — ``solve(assumptions)``
  forces the given literals as the first decisions; learned clauses
  persist across calls, and clauses appended to the attached
  :class:`~repro.sat.cnf.CNF` between calls are synced in, so a caller
  can probe many hypotheses against one growing formula.

Determinism: given the same CNF, the same assumption sequence and the
same ``seed``, every solve makes the identical decision sequence.  The
seed only perturbs the initial variable order (a seeded shuffle of the
activity tie-break ranks); ``seed=0`` keeps plain index order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import METRICS
from repro.obs.trace import maybe_span
from repro.resilience.budget import check_deadline
from repro.rng import make_rng
from repro.sat.cnf import CNF, SatError

_UNASSIGNED = -1
_VAR_DECAY = 0.95
_RESCALE = 1e100


@dataclass
class SolverStats:
    """Counters accumulated across every solve on this instance."""

    solves: int = 0
    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    learned: int = 0
    restarts: int = 0

    def snapshot(self) -> dict:
        return {
            "solves": self.solves,
            "decisions": self.decisions,
            "conflicts": self.conflicts,
            "propagations": self.propagations,
            "learned": self.learned,
            "restarts": self.restarts,
        }


@dataclass
class _Clause:
    lits: list[int]  # internal codes; lits[0:2] are the watched pair
    learnt: bool = False


def _luby(i: int) -> int:
    """The i-th (0-based) Luby number: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) // 2
        seq -= 1
        i %= size
    return 1 << seq


class Solver:
    """CDCL over a (possibly still growing) :class:`CNF`.

    Literals at the API boundary are signed DIMACS ints; internally a
    literal ``l`` is the code ``2*|l| + (l < 0)``.
    """

    def __init__(self, cnf: CNF | None = None, seed: int = 0,
                 restart_base: int = 64) -> None:
        self.cnf = cnf if cnf is not None else CNF()
        self.seed = seed
        self.restart_base = restart_base
        self.stats = SolverStats()
        self.ok = True  # False once the formula is unsat at root level

        self._n_vars = 0
        self._assigns: list[int] = [_UNASSIGNED]
        self._levels: list[int] = [0]
        self._reasons: list[int] = [-1]
        self._activity: list[float] = [0.0]
        self._phase: list[int] = [0]
        self._rank: list[int] = [0]  # seeded tie-break order
        self._watches: list[list[int]] = [[], []]
        self._clauses: list[_Clause] = []
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._prop_head = 0
        self._var_inc = 1.0
        self._synced = 0
        self._model: list[int] | None = None
        self._sync()

    # -- public surface -------------------------------------------------

    @property
    def n_vars(self) -> int:
        return self._n_vars

    def add_clause(self, lits) -> None:
        """Add a clause directly (bypassing the CNF's list)."""
        self._backtrack(0)
        self._attach_external(tuple(lits))

    def solve(self, assumptions=()) -> bool:
        """True iff satisfiable under ``assumptions`` (signed literals).

        On True, :meth:`value` reads the model.  On False with empty
        assumptions the formula itself is unsat and :attr:`ok` goes
        False; under assumptions, only this hypothesis is refuted.

        Each call is one ``sat_solve`` trace span and one fold of the
        per-solve :class:`SolverStats` delta into the process metrics
        (never per-propagation — search loops stay untouched).
        """
        assumptions = tuple(assumptions)
        before = (self.stats.conflicts, self.stats.propagations,
                  self.stats.decisions, self.stats.learned,
                  self.stats.restarts)
        with maybe_span("sat_solve", category="sat",
                        n_vars=self._n_vars,
                        n_assumptions=len(assumptions)) as span:
            sat = self._solve(assumptions)
            conflicts = self.stats.conflicts - before[0]
            propagations = self.stats.propagations - before[1]
            decisions = self.stats.decisions - before[2]
            learned = self.stats.learned - before[3]
            restarts = self.stats.restarts - before[4]
            METRICS.inc("repro_sat_solves_total")
            if conflicts:
                METRICS.inc("repro_sat_conflicts_total", conflicts)
            if propagations:
                METRICS.inc("repro_sat_propagations_total", propagations)
            if decisions:
                METRICS.inc("repro_sat_decisions_total", decisions)
            if learned:
                METRICS.inc("repro_sat_learned_total", learned)
            if restarts:
                METRICS.inc("repro_sat_restarts_total", restarts)
            if span is not None:
                span.attrs.update(
                    sat=sat, conflicts=conflicts,
                    propagations=propagations, learned=learned,
                )
        return sat

    def _solve(self, assumptions=()) -> bool:
        self._sync()
        self._model = None
        self.stats.solves += 1
        if not self.ok:
            return False
        assumptions = [self._code(lit) for lit in assumptions]
        self._backtrack(0)
        if self._propagate() >= 0:
            self.ok = False
            return False
        restart_no = 0
        budget = self.restart_base * _luby(restart_no)
        conflicts_here = 0
        ticks = 0
        while True:
            ticks += 1
            if not ticks & 1023:
                check_deadline("sat.solve")
            conflict = self._propagate()
            if conflict >= 0:
                self.stats.conflicts += 1
                conflicts_here += 1
                if not self._trail_lim:
                    self.ok = False
                    return False
                learnt, bt_level = self._analyze(conflict)
                self._backtrack(bt_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], -1)
                else:
                    ci = self._attach_internal(learnt, learnt=True)
                    self._enqueue(learnt[0], ci)
                continue
            if conflicts_here >= budget:
                self.stats.restarts += 1
                restart_no += 1
                budget = self.restart_base * _luby(restart_no)
                conflicts_here = 0
                self._backtrack(0)
                continue
            # place pending assumptions as the next decisions
            placed = False
            failed = False
            while len(self._trail_lim) < len(assumptions):
                code = assumptions[len(self._trail_lim)]
                value = self._value_code(code)
                if value == 1:
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == 0:
                    failed = True
                    break
                self._trail_lim.append(len(self._trail))
                self._enqueue(code, -1)
                placed = True
                break
            if failed:
                self._backtrack(0)
                return False
            if placed:
                continue
            var = self._pick_var()
            if var == 0:
                self._model = list(self._assigns)
                self._backtrack(0)
                return True
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(2 * var + (0 if self._phase[var] else 1), -1)

    def value(self, var: int) -> int:
        """Model value of ``var`` after a satisfiable solve (0/1).

        Variables the search never touched are don't-cares, reported 0.
        """
        if self._model is None:
            raise SatError("no model available; last solve was not SAT")
        if var >= len(self._model):
            return 0
        v = self._model[var]
        return 0 if v == _UNASSIGNED else v

    def lit_true(self, lit: int) -> bool:
        v = self.value(abs(lit))
        return bool(v) if lit > 0 else not v

    # -- setup ----------------------------------------------------------

    def _sync(self) -> None:
        """Pull variables and clauses the CNF grew since the last solve."""
        self._ensure_vars(self.cnf.n_vars)
        if self._synced < len(self.cnf.clauses):
            self._backtrack(0)
            while self._synced < len(self.cnf.clauses):
                self._attach_external(self.cnf.clauses[self._synced])
                self._synced += 1

    def _ensure_vars(self, n: int) -> None:
        if n <= self._n_vars:
            return
        rng = make_rng(self.seed, "sat.order") if self.seed else None
        for var in range(self._n_vars + 1, n + 1):
            self._assigns.append(_UNASSIGNED)
            self._levels.append(0)
            self._reasons.append(-1)
            self._activity.append(0.0)
            self._phase.append(0)
            self._rank.append(var)
            self._watches.append([])
            self._watches.append([])
        if rng is not None:
            ranks = self._rank[1:]
            rng.shuffle(ranks)
            self._rank[1:] = ranks
        self._n_vars = n

    def _attach_external(self, clause: tuple[int, ...]) -> None:
        """Simplify a user clause against root assignments, then attach."""
        for lit in clause:
            self._ensure_vars(abs(lit))
        codes: list[int] = []
        seen: set[int] = set()
        for lit in clause:
            code = self._code(lit)
            if code in seen:
                continue
            if code ^ 1 in seen:
                return  # tautology
            value = self._value_code(code)
            if value == 1 and self._levels[code >> 1] == 0:
                return  # satisfied at root
            if value == 0 and self._levels[code >> 1] == 0:
                continue  # falsified at root: drop the literal
            seen.add(code)
            codes.append(code)
        if not codes:
            self.ok = False
            return
        if len(codes) == 1:
            value = self._value_code(codes[0])
            if value == 0:
                self.ok = False
            elif value == _UNASSIGNED:
                self._enqueue(codes[0], -1)
            return
        self._attach_internal(codes, learnt=False)

    def _attach_internal(self, codes: list[int], learnt: bool) -> int:
        ci = len(self._clauses)
        self._clauses.append(_Clause(list(codes), learnt))
        self._watches[codes[0]].append(ci)
        self._watches[codes[1]].append(ci)
        if learnt:
            self.stats.learned += 1
        return ci

    # -- kernel ---------------------------------------------------------

    @staticmethod
    def _code(lit: int) -> int:
        if lit == 0:
            raise SatError("0 is not a literal")
        return 2 * lit if lit > 0 else -2 * lit + 1

    def _value_code(self, code: int) -> int:
        a = self._assigns[code >> 1]
        if a == _UNASSIGNED:
            return _UNASSIGNED
        return a ^ (code & 1)

    def _enqueue(self, code: int, reason: int) -> None:
        var = code >> 1
        self._assigns[var] = 0 if code & 1 else 1
        self._levels[var] = len(self._trail_lim)
        self._reasons[var] = reason
        self._trail.append(code)

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause index or -1."""
        while self._prop_head < len(self._trail):
            false_code = self._trail[self._prop_head] ^ 1
            self._prop_head += 1
            self.stats.propagations += 1
            wlist = self._watches[false_code]
            j = 0
            i = 0
            while i < len(wlist):
                ci = wlist[i]
                lits = self._clauses[ci].lits
                if lits[0] == false_code:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value_code(first) == 1:
                    wlist[j] = ci
                    j += 1
                    i += 1
                    continue
                found = False
                for k in range(2, len(lits)):
                    if self._value_code(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[lits[1]].append(ci)
                        found = True
                        break
                if found:
                    i += 1
                    continue
                wlist[j] = ci
                j += 1
                if self._value_code(first) == 0:
                    i += 1
                    while i < len(wlist):
                        wlist[j] = wlist[i]
                        j += 1
                        i += 1
                    del wlist[j:]
                    return ci
                self._enqueue(first, ci)
                i += 1
            del wlist[j:]
        return -1

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > _RESCALE:
            inv = 1.0 / _RESCALE
            for v in range(1, self._n_vars + 1):
                self._activity[v] *= inv
            self._var_inc *= inv

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP learning; returns (asserting clause, backjump level)."""
        current = len(self._trail_lim)
        seen = bytearray(self._n_vars + 1)
        learnt: list[int] = []
        counter = 0
        for code in self._clauses[conflict].lits:
            var = code >> 1
            if not seen[var] and self._levels[var] > 0:
                seen[var] = 1
                self._bump(var)
                if self._levels[var] == current:
                    counter += 1
                else:
                    learnt.append(code)
        idx = len(self._trail) - 1
        uip = 0
        while True:
            while not seen[self._trail[idx] >> 1]:
                idx -= 1
            code = self._trail[idx]
            idx -= 1
            var = code >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                uip = code ^ 1
                break
            reason = self._reasons[var]
            for rcode in self._clauses[reason].lits:
                rvar = rcode >> 1
                if rvar == var or seen[rvar] or self._levels[rvar] == 0:
                    continue
                seen[rvar] = 1
                self._bump(rvar)
                if self._levels[rvar] == current:
                    counter += 1
                else:
                    learnt.append(rcode)
        learnt.insert(0, uip)
        bt_level = 0
        if len(learnt) > 1:
            max_idx = 1
            for i in range(1, len(learnt)):
                level = self._levels[learnt[i] >> 1]
                if level > bt_level:
                    bt_level, max_idx = level, i
            learnt[1], learnt[max_idx] = learnt[max_idx], learnt[1]
        self._var_inc /= _VAR_DECAY
        return learnt, bt_level

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        mark = self._trail_lim[level]
        for idx in range(len(self._trail) - 1, mark - 1, -1):
            code = self._trail[idx]
            var = code >> 1
            self._phase[var] = self._assigns[var]
            self._assigns[var] = _UNASSIGNED
            self._reasons[var] = -1
        del self._trail[mark:]
        del self._trail_lim[level:]
        self._prop_head = len(self._trail)

    def _pick_var(self) -> int:
        best, best_key = 0, None
        activity = self._activity
        assigns = self._assigns
        rank = self._rank
        for var in range(1, self._n_vars + 1):
            if assigns[var] != _UNASSIGNED:
                continue
            key = (-activity[var], rank[var])
            if best_key is None or key < best_key:
                best, best_key = var, key
        return best
