"""Miter construction and bounded equivalence proof (formal verify).

A run that passes ``n_cycles * 4`` of random patterns is *consistent
with* being fixed; :func:`prove_equivalence` upgrades that to a proof
over every input sequence of a bounded length.  Implementation and
golden netlist are unrolled for ``frames`` clock cycles from their
reset states through one shared :class:`~repro.sat.cnf.GateBuilder`
(shared primary-input variables, shared structural hash), each shared
output gets a per-frame difference bit, and each output's disjunction
of difference bits is checked one at a time under an assumption — all
on a single incremental :class:`~repro.sat.solver.Solver` so learned
clauses carry across output cones.

Because the builder hashes structurally, a correctly corrected netlist
collapses onto its golden twin and most (usually all) outputs are
*structurally* proved — the difference literal folds to constant false
and the solver is never consulted.  A genuinely wrong netlist leaves a
live cone; the SAT model is decoded into a concrete per-cycle stimulus
(one pattern), which :func:`counterexample_mismatches` replays through
the compiled simulation kernel so every proof failure arrives with an
executable regression test.

The interface contract mirrors detection
(:func:`repro.debug.detect.detect_on_layout`): only outputs present on
*both* netlists are compared (instrumentation flags are excluded) and
implementation-only inputs — control points — are tied to 0, their
disabled state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.debug.detect import Mismatch, compare_runs
from repro.netlist.core import Netlist, port_name
from repro.netlist.simulate import replay_outputs
from repro.resilience.budget import check_deadline
from repro.sat.cnf import CNF, GateBuilder, SatError
from repro.sat.encode import CircuitEncoder
from repro.sat.solver import Solver


@dataclass
class ProofResult:
    """Outcome of one bounded equivalence check."""

    #: every shared output proved equivalent over the bound
    proved: bool
    #: unrolling depth (clock cycles from reset)
    frames: int
    #: per-output verdict: "proved_structural" (difference folded to
    #: constant false), "proved" (UNSAT), "counterexample", "skipped"
    #: (not checked after the first counterexample)
    outputs: dict[str, str] = field(default_factory=dict)
    #: per-cycle primary-input words (one pattern) exciting the first
    #: difference, or None when proved
    counterexample: list[dict[str, int]] | None = None
    cex_output: str | None = None
    n_vars: int = 0
    n_clauses: int = 0
    build_seconds: float = 0.0
    solve_seconds: float = 0.0
    solver_stats: dict = field(default_factory=dict)

    @property
    def n_structural(self) -> int:
        return sum(
            1 for v in self.outputs.values() if v == "proved_structural"
        )

    def to_dict(self) -> dict:
        return {
            "proved": self.proved,
            "frames": self.frames,
            "outputs": dict(self.outputs),
            "counterexample": self.counterexample,
            "cex_output": self.cex_output,
            "n_structural": self.n_structural,
            "n_vars": self.n_vars,
            "n_clauses": self.n_clauses,
            "build_seconds": round(self.build_seconds, 6),
            "solve_seconds": round(self.solve_seconds, 6),
            "solver_stats": dict(self.solver_stats),
        }


def shared_outputs(impl: Netlist, golden: Netlist) -> list[str]:
    """Output ports present on both sides — the functional interface."""
    impl_ports = {port_name(po) for po in impl.primary_outputs()}
    gold_ports = {port_name(po) for po in golden.primary_outputs()}
    return sorted(impl_ports & gold_ports)


def prove_equivalence(
    impl: Netlist,
    golden: Netlist,
    frames: int = 4,
    outputs: list[str] | None = None,
    seed: int = 0,
) -> ProofResult:
    """Bounded equivalence of ``impl`` against ``golden`` from reset.

    Checks each shared output cone over ``frames`` cycles; stops at the
    first output with a counterexample.  Deterministic for a given
    seed.
    """
    if frames < 1:
        raise SatError("need at least one frame")
    t0 = time.perf_counter()
    gb = GateBuilder(CNF())
    golden_ports = {port_name(pi) for pi in golden.primary_inputs()}
    input_vars: dict[tuple[str, int], int] = {}

    def shared_input(port: str, frame: int) -> int:
        key = (port, frame)
        var = input_vars.get(key)
        if var is None:
            var = gb.cnf.new_var()
            input_vars[key] = var
        return var

    def impl_input(port: str, frame: int) -> int:
        if port in golden_ports:
            return shared_input(port, frame)
        return gb.false  # implementation-only control inputs held at 0

    enc_gold = CircuitEncoder(golden, gb, inputs=shared_input)
    enc_impl = CircuitEncoder(impl, gb, inputs=impl_input)
    checked = outputs if outputs is not None else shared_outputs(impl, golden)

    solver = Solver(gb.cnf, seed=seed)
    result = ProofResult(proved=True, frames=frames)
    solve = 0.0
    for name in checked:
        check_deadline("prove.output")
        diffs = []
        for t in range(frames):
            diff = gb.lit_xor(
                [enc_impl.output_lit(name, t), enc_gold.output_lit(name, t)]
            )
            if diff == gb.false:
                continue
            diffs.append(diff)
        miter = gb.lit_or(diffs) if diffs else gb.false
        if miter == gb.false:
            result.outputs[name] = "proved_structural"
            continue
        s0 = time.perf_counter()
        sat = solver.solve([miter])
        solve += time.perf_counter() - s0
        if not sat:
            result.outputs[name] = "proved"
            continue
        result.outputs[name] = "counterexample"
        result.proved = False
        result.cex_output = name
        result.counterexample = _decode_stimulus(
            solver, input_vars, sorted(golden_ports), frames
        )
        for other in checked:
            if other not in result.outputs:
                result.outputs[other] = "skipped"
        break
    result.build_seconds = time.perf_counter() - t0 - solve
    result.solve_seconds = solve
    result.n_vars = gb.cnf.n_vars
    result.n_clauses = len(gb.cnf.clauses)
    result.solver_stats = solver.stats.snapshot()
    return result


def _decode_stimulus(
    solver: Solver,
    input_vars: dict[tuple[str, int], int],
    ports: list[str],
    frames: int,
) -> list[dict[str, int]]:
    """Model -> per-cycle input words (unconstrained inputs read 0)."""
    stimulus: list[dict[str, int]] = []
    for t in range(frames):
        cycle: dict[str, int] = {}
        for port in ports:
            var = input_vars.get((port, t))
            cycle[port] = solver.value(var) if var is not None else 0
        stimulus.append(cycle)
    return stimulus


def counterexample_mismatches(
    impl: Netlist,
    golden: Netlist,
    stimulus: list[dict[str, int]],
    engine: str = "compiled",
) -> list[Mismatch]:
    """Replay a counterexample through the simulation kernel.

    Runs both netlists from reset on the single-pattern stimulus and
    returns the observed output mismatches — the executable evidence
    (and regression test) behind a failed proof.  Implementation-only
    inputs default to 0, matching the proof's encoding.
    """
    return compare_runs(
        replay_outputs(impl, stimulus, engine=engine),
        replay_outputs(golden, stimulus, engine=engine),
    )
