"""Small planar-geometry helpers used by placement and tiling.

Coordinates are integer CLB-grid coordinates: ``x`` grows to the right,
``y`` grows upward.  A :class:`Rect` covers the half-open-free inclusive
range ``[x0, x1] x [y0, y1]`` — both corners are inside the rectangle,
matching how region constraints are expressed for the placer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, order=True)
class Rect:
    """Inclusive axis-aligned rectangle on the CLB grid."""

    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(f"degenerate rectangle {self!r}")

    @property
    def width(self) -> int:
        return self.x1 - self.x0 + 1

    @property
    def height(self) -> int:
        return self.y1 - self.y0 + 1

    @property
    def area(self) -> int:
        return self.width * self.height

    def contains(self, x: int, y: int) -> bool:
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and other.x1 <= self.x1
            and other.y1 <= self.y1
        )

    def overlaps(self, other: "Rect") -> bool:
        return not (
            other.x1 < self.x0
            or self.x1 < other.x0
            or other.y1 < self.y0
            or self.y1 < other.y0
        )

    def touches(self, other: "Rect") -> bool:
        """True when the rectangles overlap or share an edge/corner."""
        return not (
            other.x1 < self.x0 - 1
            or self.x1 < other.x0 - 1
            or other.y1 < self.y0 - 1
            or self.y1 < other.y0 - 1
        )

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.x0, other.x0),
            min(self.y0, other.y0),
            max(self.x1, other.x1),
            max(self.y1, other.y1),
        )

    def expanded(self, margin: int, clip: "Rect" | None = None) -> "Rect":
        """Return this rectangle grown by ``margin`` on every side.

        When ``clip`` is given the result is intersected with it, which is
        how the incremental-P&R baseline grows its rip-up window without
        leaving the device.
        """
        grown = Rect(
            self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin
        )
        if clip is None:
            return grown
        return grown.intersection(clip)

    def intersection(self, other: "Rect") -> "Rect":
        if not self.overlaps(other):
            raise ValueError(f"{self!r} and {other!r} do not overlap")
        return Rect(
            max(self.x0, other.x0),
            max(self.y0, other.y0),
            min(self.x1, other.x1),
            min(self.y1, other.y1),
        )

    def sites(self) -> Iterator[tuple[int, int]]:
        """Yield every (x, y) grid site inside the rectangle."""
        for y in range(self.y0, self.y1 + 1):
            for x in range(self.x0, self.x1 + 1):
                yield (x, y)

    def center(self) -> tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)


def manhattan(a: tuple[int, int], b: tuple[int, int]) -> int:
    """Manhattan distance between two grid points."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def half_perimeter(points: list[tuple[int, int]]) -> int:
    """Half-perimeter wirelength (HPWL) of a point set; 0 for < 2 points."""
    if len(points) < 2:
        return 0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))
