"""Mock bitstream: per-CLB-site configuration frames.

A real XC4000 bitstream configures CLB function generators, flip-flops
and routing in column-ordered frames.  The model here keeps exactly the
information the experiments need:

* per *site*, a canonical byte string encoding the occupying block's
  logic configuration (LUT truth tables, FF inits, BLE wiring);
* per *tile*, a digest over its sites.

Two layouts agree on a tile iff the tile's digest matches — that is the
**lock invariant** the paper claims for unaffected tiles ("keeping the
rest of the design fixed insures that no errors will be introduced in
the unchanged portions").  Tests assert it after every tile-confined
commit.

Routing note: intra-tile routing is part of the frame; the portions of
*interface* nets outside affected tiles are preserved by construction
(see :func:`repro.pnr.flow.replace_region`), while brand-new nets of
inserted test logic may legitimately cross unaffected tiles — exactly
like new wires through spare routing on the real device — so global
routing is deliberately not hashed into tile frames.
"""

from __future__ import annotations

import hashlib

from repro.geometry import Rect
from repro.pnr.flow import Layout
from repro.synth.pack import PackedDesign


def block_logic_config(packed: PackedDesign, block_index: int) -> bytes:
    """Canonical byte encoding of one block's logic configuration.

    For a CLB this is the per-BLE frame content (LUT truth tables and
    input wiring, FF inits and D nets) — the same bytes the bitstream
    frames hash, which is why the :class:`~repro.tiling.cache.TileConfigCache`
    keys on it: equal bytes means an identical reconfiguration target.
    IOBs encode their direction and pad name.
    """
    block = packed.blocks[block_index]
    if not block.is_clb:
        return f"{block.kind}:{block.name}".encode()
    netlist = packed.netlist
    clb = packed.clb_of_block(block_index)
    parts: list[bytes] = []
    for ble in clb.bles:
        if ble.lut and netlist.has_instance(ble.lut):
            lut = netlist.instance(ble.lut)
            parts.append(b"L")
            parts.append(lut.params.get("table", 0).to_bytes(2, "little"))
            parts.append(",".join(n.name for n in lut.inputs).encode())
        if ble.ff and netlist.has_instance(ble.ff):
            ff = netlist.instance(ble.ff)
            parts.append(b"F")
            parts.append(bytes([ff.params.get("init", 0)]))
            parts.append(ff.inputs[0].name.encode())
    return b"|".join(parts)


class Bitstream:
    """Configuration frames derived from a layout."""

    def __init__(self, layout: Layout, include_routing: bool = True) -> None:
        self.layout = layout
        self.site_config: dict[tuple[int, int], bytes] = {}
        self._build_logic()
        if include_routing:
            self._attach_intra_tile_routing()

    def _build_logic(self) -> None:
        packed = self.layout.packed
        for site, block_idx in self.layout.placement.clb_at.items():
            self.site_config[site] = block_logic_config(packed, block_idx)

    def _attach_intra_tile_routing(self) -> None:
        """Fold each route edge into the config of the sites it touches."""
        extra: dict[tuple[int, int], list[bytes]] = {}
        for tree in self.layout.routes.values():
            for a, b in sorted(tree.edges):
                tag = f"r{a[0]},{a[1]}-{b[0]},{b[1]}".encode()
                extra.setdefault(a, []).append(tag)
        for site, tags in extra.items():
            base = self.site_config.get(site, b"")
            self.site_config[site] = base + b"#" + b";".join(sorted(tags))

    def frame_digest(self, rect: Rect) -> str:
        """Digest of every site configuration inside ``rect``."""
        h = hashlib.sha256()
        for site in rect.sites():
            h.update(f"{site[0]},{site[1]}:".encode())
            h.update(self.site_config.get(site, b"<empty>"))
            h.update(b"\n")
        return h.hexdigest()


def frames_for_tiles(
    layout: Layout, rects: list[Rect], include_routing: bool = False
) -> list[str]:
    """Per-tile digests; compare across commits to check the invariant.

    ``include_routing`` folds intra-tile route segments into the frames;
    leave it off to compare pure logic configuration (new test-logic
    nets may cross quiet tiles through spare channels, see module docs).
    """
    bitstream = Bitstream(layout, include_routing=include_routing)
    return [bitstream.frame_digest(rect) for rect in rects]
