"""Cycle emulator: runs the placed design like the emulation board would.

The emulator executes the *mapped netlist that the layout implements* —
it refuses to run a layout whose placement is incomplete or whose
packing disagrees with the netlist, the moral equivalent of loading a
stale bitstream.  Functionally it is the same levelized engine as the
golden model (hardware emulation is functionally exact; that is the
point of emulation), so any output divergence from the golden reference
is a *design error*, not an artifact.

Observation flags: instrumentation (:mod:`repro.debug.instrument`) adds
primary outputs named ``obs_flag*``; :meth:`Emulator.run_with_flags`
separates them from functional outputs so the detection step can watch
the flags the way a logic analyzer would.
"""

from __future__ import annotations

from repro.errors import EmulationError
from repro.netlist.simulate import initial_state, make_engine
from repro.pnr.flow import Layout
from repro.tiling.eco import ChangeSet

OBS_PREFIX = "obs_flag"


class Emulator:
    """Executes a placed-and-routed design cycle by cycle.

    ``engine`` selects the combinational evaluator: ``"codegen"`` (the
    exec-compiled straight-line kernel), ``"compiled"`` (the
    instruction-tape kernel, shared per netlist and kept current across
    ECO edits) or ``"interpreted"`` (the retained reference engine).
    Long-lived consumers like the localizer construct one emulator and
    call :meth:`refresh` after each committed change instead of
    rebuilding — construction re-checks the whole configuration and
    re-levelizes, which is exactly the per-probe cost this avoids.
    """

    def __init__(self, layout: Layout, engine: str = "compiled") -> None:
        self.layout = layout
        self.engine = engine
        self._check_configuration()
        self.netlist = layout.packed.netlist
        self._comb = make_engine(self.netlist, engine)
        self.state: dict[str, int] = {}
        self.cycle = 0
        self.reset()

    def _check_configuration(self) -> None:
        packed = self.layout.packed
        try:
            self.layout.placement.check_complete()
        except Exception as exc:
            raise EmulationError(f"cannot emulate: {exc}") from exc
        for inst in packed.netlist.logic_instances():
            if inst.name not in packed.block_of_instance:
                raise EmulationError(
                    f"instance {inst.name} has no configured block; "
                    "re-pack before emulating"
                )

    def refresh(
        self, layout: Layout | None = None, changes: ChangeSet | None = None
    ) -> None:
        """Track a committed ECO without rebuilding the emulator.

        ``layout`` replaces the emulated layout (strategies may hand out
        a new object after a commit) but must implement the same
        netlist; ``changes`` lets the compiled kernel re-lower only the
        affected fanout region.
        """
        if layout is not None:
            if layout.packed.netlist is not self.netlist:
                raise EmulationError(
                    "refresh() cannot switch to a different netlist; "
                    "construct a new Emulator"
                )
            self.layout = layout
        self._check_configuration()
        if self.engine in ("compiled", "codegen") and changes is not None:
            self._comb.apply_changeset(changes)
        elif self.engine == "interpreted":
            # re-levelize: the interpreted engine snapshots topo order
            self._comb = make_engine(self.netlist, self.engine)

    def cone_runner(self, ports):
        """A fanin-sliced sequential runner for ``ports``, if the
        active engine supports one (codegen does); ``None`` otherwise.
        """
        maker = getattr(self._comb, "cone_runner", None)
        return None if maker is None else maker(tuple(ports))

    def reset(self, n_patterns: int = 1) -> None:
        self.state = initial_state(self.netlist, n_patterns)
        self.cycle = 0

    def step(self, inputs: dict[str, int], n_patterns: int = 1) -> dict[str, int]:
        outputs, self.state = self._comb.next_state(
            inputs, n_patterns, self.state
        )
        self.cycle += 1
        return outputs

    def run(
        self, stimulus: list[dict[str, int]], n_patterns: int = 1
    ) -> list[dict[str, int]]:
        return [self.step(cycle_in, n_patterns) for cycle_in in stimulus]

    def run_with_flags(
        self, stimulus: list[dict[str, int]], n_patterns: int = 1
    ) -> tuple[list[dict[str, int]], list[dict[str, int]]]:
        """Run and split outputs into (functional, observation flags)."""
        functional: list[dict[str, int]] = []
        flags: list[dict[str, int]] = []
        for cycle_in in stimulus:
            out = self.step(cycle_in, n_patterns)
            functional.append(
                {k: v for k, v in out.items() if not k.startswith(OBS_PREFIX)}
            )
            flags.append(
                {k: v for k, v in out.items() if k.startswith(OBS_PREFIX)}
            )
        return functional, flags
