"""Emulation substrate: cycle emulator and mock bitstream model.

* :mod:`repro.emu.bitstream` — per-site configuration frames; proves the
  tiling lock invariant (unaffected tiles are byte-identical across a
  debugging change);
* :mod:`repro.emu.emulator` — cycle-accurate emulation of the placed
  design, the vehicle for error detection (paper step 21: "emulate").
"""

from repro.emu.bitstream import Bitstream, block_logic_config, frames_for_tiles
from repro.emu.emulator import Emulator

__all__ = ["Bitstream", "block_logic_config", "frames_for_tiles", "Emulator"]
