"""Device model: CLB grid, IOB ring, routing channels.

The model mirrors the parts of the XC4000 family the paper's experiments
exercise: a square array of CLBs (each two 4-LUTs + two FFs, per the
1996 Programmable Logic Data Book [13]), bonded IOBs around the
perimeter, and routing channels between rows and columns with a fixed
track capacity.

Geometry conventions:

* CLB sites occupy ``0 <= x < nx``, ``0 <= y < ny``;
* IOB slots live on the ring one unit outside the array
  (``x == -1``, ``x == nx``, ``y == -1`` or ``y == ny``), each slot
  holding up to :attr:`DeviceSpec.io_per_slot` pads;
* the router works on the full ``(nx+2) x (ny+2)`` cell grid, so IOB
  ring cells are routable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchitectureError
from repro.geometry import Rect


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one family member.

    ``channel_width`` aggregates the tracks of one inter-CLB channel
    segment (XC4000: ~8 singles + 4 doubles + long lines per side, and
    the switch matrices multiply usable paths — 24 keeps the abstracted
    one-edge-per-cell-pair model congestion-faithful).
    """

    name: str
    nx: int
    ny: int
    channel_width: int = 24
    io_per_slot: int = 2

    @property
    def n_clbs(self) -> int:
        return self.nx * self.ny

    @property
    def n_io_slots(self) -> int:
        return 2 * (self.nx + self.ny)

    @property
    def io_capacity(self) -> int:
        return self.n_io_slots * self.io_per_slot


#: The XC4000 family members of the 1996 data book (CLB array sizes).
XC4000_FAMILY: tuple[DeviceSpec, ...] = (
    DeviceSpec("XC4003", 10, 10),
    DeviceSpec("XC4005", 14, 14),
    DeviceSpec("XC4006", 16, 16),
    DeviceSpec("XC4008", 18, 18),
    DeviceSpec("XC4010", 20, 20),
    DeviceSpec("XC4013", 24, 24),
    DeviceSpec("XC4020", 28, 28),
    DeviceSpec("XC4025", 32, 32),
    DeviceSpec("XC4028", 34, 34),
    DeviceSpec("XC4036", 36, 36),
    DeviceSpec("XC4044", 40, 40),
    DeviceSpec("XC4052", 44, 44),
    DeviceSpec("XC4062", 48, 48),
    DeviceSpec("XC4085", 56, 56),
)


class Device:
    """A concrete device instance with geometry helpers."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.nx = spec.nx
        self.ny = spec.ny
        self.channel_width = spec.channel_width
        self.io_per_slot = spec.io_per_slot

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def clb_region(self) -> Rect:
        return Rect(0, 0, self.nx - 1, self.ny - 1)

    def is_clb_site(self, x: int, y: int) -> bool:
        return 0 <= x < self.nx and 0 <= y < self.ny

    def is_io_slot(self, x: int, y: int) -> bool:
        on_x_ring = x in (-1, self.nx) and -1 <= y <= self.ny
        on_y_ring = y in (-1, self.ny) and -1 <= x <= self.nx
        corner = x in (-1, self.nx) and y in (-1, self.ny)
        return (on_x_ring or on_y_ring) and not corner

    def io_slots(self) -> list[tuple[int, int]]:
        """All IOB ring slots in deterministic clockwise order."""
        slots: list[tuple[int, int]] = []
        slots.extend((x, self.ny) for x in range(self.nx))  # top, left→right
        slots.extend((self.nx, y) for y in range(self.ny - 1, -1, -1))  # right
        slots.extend((x, -1) for x in range(self.nx - 1, -1, -1))  # bottom
        slots.extend((-1, y) for y in range(self.ny))  # left, bottom→top
        return slots

    def is_routable(self, x: int, y: int) -> bool:
        """The router may use CLB sites and the IOB ring (not corners)."""
        return self.is_clb_site(x, y) or self.is_io_slot(x, y)

    def neighbors(self, x: int, y: int) -> list[tuple[int, int]]:
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            cx, cy = x + dx, y + dy
            if self.is_routable(cx, cy):
                out.append((cx, cy))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device({self.name}, {self.nx}x{self.ny})"


def pick_device(
    n_clbs: int,
    area_overhead: float = 0.0,
    min_io: int = 0,
    channel_width: int | None = None,
) -> Device:
    """Smallest family member fitting ``n_clbs`` plus overhead slack.

    ``area_overhead`` is the paper's user-controlled slack parameter —
    the device must hold ``n_clbs * (1 + overhead)`` CLBs so tiles can
    keep spare resources for test-logic introduction.
    """
    needed = int(n_clbs * (1.0 + area_overhead) + 0.999)
    for spec in XC4000_FAMILY:
        if spec.n_clbs >= needed and spec.io_capacity >= min_io:
            if channel_width is not None:
                spec = DeviceSpec(
                    spec.name, spec.nx, spec.ny, channel_width, spec.io_per_slot
                )
            return Device(spec)
    raise ArchitectureError(
        f"no XC4000 family member holds {needed} CLBs and {min_io} IOs "
        f"(largest is {XC4000_FAMILY[-1].name})"
    )


def custom_device(
    nx: int, ny: int, channel_width: int = 24, io_per_slot: int = 2
) -> Device:
    """An arbitrary-size device for tests and scaled-down experiments."""
    if nx < 1 or ny < 1:
        raise ArchitectureError(f"bad grid {nx}x{ny}")
    return Device(DeviceSpec(f"custom{nx}x{ny}", nx, ny, channel_width, io_per_slot))
