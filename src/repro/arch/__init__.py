"""FPGA architecture model (Xilinx XC4000-style CLB grid).

* :mod:`repro.arch.device` — family table, device selection, grid and
  IOB-ring geometry, channel capacities.
"""

from repro.arch.device import (
    Device,
    DeviceSpec,
    XC4000_FAMILY,
    custom_device,
    pick_device,
)

__all__ = [
    "Device",
    "DeviceSpec",
    "XC4000_FAMILY",
    "custom_device",
    "pick_device",
]
