"""``repro.obs`` — dependency-free observability for the debug stack.

Three cooperating pieces, all standard-library only:

* :mod:`repro.obs.trace` — structured tracing: nested spans
  (run → stage → round → probe/commit/SAT-solve/CEGIS-iteration)
  exportable as Chrome ``trace_event`` JSON or a rendered span tree;
* :mod:`repro.obs.metrics` — the process-wide
  :data:`~repro.obs.metrics.METRICS` registry of labeled
  counters/gauges/histograms with snapshot/merge/delta movement and
  Prometheus text exposition;
* :mod:`repro.obs.profile` — opt-in per-stage cProfile aggregation
  landing in ``RunResult.profile``.

Everything is zero-cost when disarmed: tracing checks one
thread-local, profiling is opt-in, and metrics increment only at
coarse pipeline events.
"""

from repro.obs.metrics import METRICS, Histogram, MetricsRegistry
from repro.obs.profile import ProfilingHooks, StageProfiler
from repro.obs.trace import (
    Span,
    Tracer,
    TracingHooks,
    active_tracer,
    maybe_instant,
    maybe_set_attrs,
    maybe_span,
    render_chrome_tree,
    render_span_tree,
    set_active_tracer,
    tracer_scope,
)

__all__ = [
    "METRICS",
    "Histogram",
    "MetricsRegistry",
    "ProfilingHooks",
    "Span",
    "StageProfiler",
    "Tracer",
    "TracingHooks",
    "active_tracer",
    "maybe_instant",
    "maybe_set_attrs",
    "maybe_span",
    "render_chrome_tree",
    "render_span_tree",
    "set_active_tracer",
    "tracer_scope",
]
