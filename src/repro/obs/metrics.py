"""Process-wide metrics — counters, gauges, histograms with labels.

A :class:`MetricsRegistry` holds labeled series behind one lock:
counters (monotonic totals — runs by status, probes, SAT conflicts),
gauges (last-write-wins — queue depth), and histograms (fixed log-ish
buckets plus a bounded raw-sample tail for exact p50/p95/max).  The
module-global :data:`METRICS` is the process's registry; increments
happen at coarse grain only — per run, per solve, per probe, per
commit — never inside hot loops, so the always-on cost is a few dict
operations per pipeline event.

Three movement operations make the registry composable across the
campaign and service topologies:

* :meth:`~MetricsRegistry.snapshot` — a JSON-able copy;
* :meth:`~MetricsRegistry.merge` — fold a snapshot in (counters and
  histograms add, gauges overwrite), used by the campaign parent for
  process-mode workers and by the daemon for per-job worker deltas;
* :meth:`~MetricsRegistry.delta` — what changed since an earlier
  snapshot, used by service workers so a long-lived child never
  double-ships its history.

:meth:`~MetricsRegistry.to_prometheus` renders the whole registry in
the Prometheus text exposition format for the daemon's
``stats --metrics`` verb.  See the README "Observability" section for
the metric name/label reference table.
"""

from __future__ import annotations

import threading

__all__ = ["METRICS", "Histogram", "MetricsRegistry"]

#: histogram bucket upper bounds (seconds-oriented, log-ish spacing)
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)
#: raw samples retained per histogram series for exact quantiles
MAX_SAMPLES = 4096


def _labels_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Histogram:
    """One labeled histogram series: buckets + bounded raw samples."""

    __slots__ = ("count", "total", "min", "max", "buckets", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets = [0] * (len(DEFAULT_BUCKETS) + 1)  # last = +Inf
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(DEFAULT_BUCKETS):
            if value <= bound:
                self.buckets[i] += 1
                break
        else:
            self.buckets[-1] += 1
        if len(self.samples) < MAX_SAMPLES:
            self.samples.append(value)

    def quantile(self, q: float) -> float | None:
        """Exact quantile over the retained sample tail."""
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        idx = min(len(ordered) - 1,
                  max(0, int(round(q * (len(ordered) - 1)))))
        return ordered[idx]

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": self.min,
            "max": self.max,
            "buckets": list(self.buckets),
            "samples": [round(s, 9) for s in self.samples],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        hist = cls()
        hist.count = int(data.get("count", 0))
        hist.total = float(data.get("sum", 0.0))
        hist.min = data.get("min")
        hist.max = data.get("max")
        buckets = data.get("buckets") or []
        for i, value in enumerate(buckets[: len(hist.buckets)]):
            hist.buckets[i] = int(value)
        hist.samples = [float(s) for s in (data.get("samples") or [])]
        del hist.samples[MAX_SAMPLES:]
        return hist

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        for i, value in enumerate(other.buckets):
            self.buckets[i] += value
        room = MAX_SAMPLES - len(self.samples)
        if room > 0:
            self.samples.extend(other.samples[:room])


class MetricsRegistry:
    """Thread-safe labeled counters/gauges/histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, dict[tuple, float]] = {}
        self._gauges: dict[str, dict[tuple, float]] = {}
        self._histograms: dict[str, dict[tuple, Histogram]] = {}

    # -- recording -----------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = _labels_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        with self._lock:
            self._gauges.setdefault(name, {})[_labels_key(labels)] = \
                float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        key = _labels_key(labels)
        with self._lock:
            series = self._histograms.setdefault(name, {})
            hist = series.get(key)
            if hist is None:
                hist = series[key] = Histogram()
            hist.observe(value)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- reading -------------------------------------------------------

    def counter_value(self, name: str, **labels) -> float:
        """Sum over series matching ``labels`` (subset match)."""
        want = set(labels.items())
        with self._lock:
            series = self._counters.get(name, {})
            return sum(v for key, v in series.items()
                       if want.issubset(set(key)))

    def gauge_value(self, name: str, **labels) -> float | None:
        with self._lock:
            return self._gauges.get(name, {}).get(_labels_key(labels))

    def histogram(self, name: str, **labels) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name, {}).get(_labels_key(labels))

    # -- snapshot / merge / delta --------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "counters": [
                    {"name": name, "labels": dict(key), "value": value}
                    for name, series in sorted(self._counters.items())
                    for key, value in sorted(series.items())
                ],
                "gauges": [
                    {"name": name, "labels": dict(key), "value": value}
                    for name, series in sorted(self._gauges.items())
                    for key, value in sorted(series.items())
                ],
                "histograms": [
                    {"name": name, "labels": dict(key),
                     **hist.to_dict()}
                    for name, series in sorted(self._histograms.items())
                    for key, hist in sorted(series.items())
                ],
            }

    def merge(self, snapshot: dict | None) -> None:
        if not snapshot:
            return
        with self._lock:
            for entry in snapshot.get("counters", []):
                series = self._counters.setdefault(entry["name"], {})
                key = _labels_key(entry.get("labels", {}))
                series[key] = series.get(key, 0.0) + \
                    float(entry.get("value", 0.0))
            for entry in snapshot.get("gauges", []):
                self._gauges.setdefault(entry["name"], {})[
                    _labels_key(entry.get("labels", {}))
                ] = float(entry.get("value", 0.0))
            for entry in snapshot.get("histograms", []):
                series = self._histograms.setdefault(entry["name"], {})
                key = _labels_key(entry.get("labels", {}))
                incoming = Histogram.from_dict(entry)
                hist = series.get(key)
                if hist is None:
                    series[key] = incoming
                else:
                    hist.merge(incoming)

    def delta(self, before: dict) -> dict:
        """What changed since ``before`` (an earlier snapshot).

        Counters and histogram totals subtract; gauges report their
        current value; histogram sample tails keep only the entries
        appended since the snapshot, so quantiles of a merged delta
        reflect only the new observations.
        """
        current = self.snapshot()
        prev_counters = {
            (e["name"], _labels_key(e.get("labels", {}))):
                float(e.get("value", 0.0))
            for e in before.get("counters", [])
        }
        counters = []
        for entry in current["counters"]:
            key = (entry["name"], _labels_key(entry.get("labels", {})))
            change = entry["value"] - prev_counters.get(key, 0.0)
            if change:
                counters.append({**entry, "value": change})
        prev_hists = {
            (e["name"], _labels_key(e.get("labels", {}))): e
            for e in before.get("histograms", [])
        }
        histograms = []
        for entry in current["histograms"]:
            key = (entry["name"], _labels_key(entry.get("labels", {})))
            prev = prev_hists.get(key)
            if prev is None:
                histograms.append(entry)
                continue
            count = entry["count"] - int(prev.get("count", 0))
            if count <= 0:
                continue
            buckets = [b - p for b, p in
                       zip(entry["buckets"], prev.get("buckets", []))]
            n_prev_samples = len(prev.get("samples", []))
            histograms.append({
                "name": entry["name"], "labels": entry["labels"],
                "count": count,
                "sum": round(entry["sum"] - float(prev.get("sum", 0.0)),
                             9),
                "min": entry["min"], "max": entry["max"],
                "buckets": buckets,
                "samples": entry["samples"][n_prev_samples:],
            })
        return {
            "counters": counters,
            "gauges": current["gauges"],
            "histograms": histograms,
        }

    # -- exposition ----------------------------------------------------

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""

        def fmt_labels(key: tuple, extra: dict | None = None) -> str:
            pairs = list(key) + sorted((extra or {}).items())
            if not pairs:
                return ""
            body = ",".join(
                f'{k}="{_escape(str(v))}"' for k, v in pairs
            )
            return "{" + body + "}"

        def _escape(value: str) -> str:
            return value.replace("\\", "\\\\").replace('"', '\\"') \
                        .replace("\n", "\\n")

        lines: list[str] = []
        with self._lock:
            for name, series in sorted(self._counters.items()):
                lines.append(f"# TYPE {name} counter")
                for key, value in sorted(series.items()):
                    lines.append(f"{name}{fmt_labels(key)} {_num(value)}")
            for name, series in sorted(self._gauges.items()):
                lines.append(f"# TYPE {name} gauge")
                for key, value in sorted(series.items()):
                    lines.append(f"{name}{fmt_labels(key)} {_num(value)}")
            for name, series in sorted(self._histograms.items()):
                lines.append(f"# TYPE {name} histogram")
                for key, hist in sorted(series.items()):
                    running = 0
                    for bound, count in zip(DEFAULT_BUCKETS,
                                            hist.buckets):
                        running += count
                        lines.append(
                            f"{name}_bucket"
                            f"{fmt_labels(key, {'le': _num(bound)})} "
                            f"{running}"
                        )
                    lines.append(
                        f"{name}_bucket{fmt_labels(key, {'le': '+Inf'})}"
                        f" {hist.count}"
                    )
                    lines.append(
                        f"{name}_sum{fmt_labels(key)} {_num(hist.total)}"
                    )
                    lines.append(
                        f"{name}_count{fmt_labels(key)} {hist.count}"
                    )
        return "\n".join(lines) + "\n"


def _num(value: float) -> str:
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(round(as_float, 9))


#: the process's registry — the pipeline, campaign runner, and service
#: daemon all record here; child processes ship snapshots/deltas back
METRICS = MetricsRegistry()
