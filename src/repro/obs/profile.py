"""Opt-in per-stage profiling for the debug pipeline.

:class:`StageProfiler` scopes a :class:`cProfile.Profile` to each
pipeline stage, driven by the same ``PipelineHooks`` boundary events
tracing uses (:class:`ProfilingHooks`).  Composite stages nest — the
diagnose loop wraps localize/correct — and CPython allows only one
active profiler, so the profiler keeps a stack: entering an inner
stage suspends the outer profile and resumes it on the way out.  A
stage's numbers therefore *exclude* its children, which is the useful
attribution (the diagnose row shows loop overhead, not localize's
work).

Per-function self/cumulative times are folded across rounds by
function identity, and :meth:`StageProfiler.result` returns the top-N
rows per stage — the dict that lands in ``RunResult.profile`` and in
the trace file's ``otherData``.

Caveats (also in the README): cProfile is deterministic, not
sampling — expect tens of percent overhead on call-dense stages, so
never combine ``--profile`` with performance measurements; child
processes (campaign process executor, service workers) profile only
their own pipeline work.
"""

from __future__ import annotations

import cProfile
import pstats

__all__ = ["ProfilingHooks", "StageProfiler"]

#: rows retained per stage in the aggregated result
TOP_N = 15


class StageProfiler:
    """Per-stage cProfile aggregation across rounds."""

    def __init__(self, top_n: int = TOP_N) -> None:
        self.top_n = top_n
        self._stack: list[tuple[str, cProfile.Profile]] = []
        # stage -> func -> [ncalls, tottime, cumtime]
        self._stats: dict[str, dict[str, list]] = {}

    def start(self, stage_name: str) -> None:
        if self._stack:
            self._stack[-1][1].disable()
        profile = cProfile.Profile()
        self._stack.append((stage_name, profile))
        profile.enable()

    def stop(self, stage_name: str) -> None:
        while self._stack:
            name, profile = self._stack.pop()
            profile.disable()
            self._fold(name, profile)
            if name == stage_name:
                break
        if self._stack:
            self._stack[-1][1].enable()

    def _fold(self, stage_name: str, profile: cProfile.Profile) -> None:
        stats = pstats.Stats(profile)
        into = self._stats.setdefault(stage_name, {})
        for (filename, lineno, func), row in stats.stats.items():
            _cc, ncalls, tottime, cumtime, _callers = row
            key = f"{filename}:{lineno}:{func}"
            agg = into.get(key)
            if agg is None:
                into[key] = [ncalls, tottime, cumtime]
            else:
                agg[0] += ncalls
                agg[1] += tottime
                agg[2] += cumtime

    def result(self) -> dict:
        """Top-N per stage by self time, JSON-able."""
        stages = {}
        for stage_name, funcs in self._stats.items():
            top = sorted(funcs.items(),
                         key=lambda item: -item[1][1])[: self.top_n]
            stages[stage_name] = [
                {
                    "func": key,
                    "ncalls": int(values[0]),
                    "tottime_s": round(values[1], 6),
                    "cumtime_s": round(values[2], 6),
                }
                for key, values in top
            ]
        return {"profiler": "cProfile", "stages": stages}


class ProfilingHooks:
    """``PipelineHooks`` duck-type scoping the profiler per stage.

    The profiler starts after delegating ``on_stage_start`` and stops
    before delegating ``on_stage_end``, so inner-hook work never
    pollutes a stage's profile.
    """

    def __init__(self, profiler: StageProfiler, inner=None) -> None:
        self.profiler = profiler
        self.inner = inner

    def on_stage_start(self, stage, ctx) -> None:
        if self.inner is not None:
            self.inner.on_stage_start(stage, ctx)
        self.profiler.start(stage.name)

    def on_stage_end(self, stage, ctx, seconds: float) -> None:
        self.profiler.stop(stage.name)
        if self.inner is not None:
            self.inner.on_stage_end(stage, ctx, seconds)

    def on_probe(self, ctx, step) -> None:
        if self.inner is not None:
            self.inner.on_probe(ctx, step)

    def on_commit(self, ctx, record) -> None:
        if self.inner is not None:
            self.inner.on_commit(ctx, record)
