"""Structured tracing — nested spans over the debug pipeline.

A :class:`Tracer` records a tree of :class:`Span`s — run → stage →
round → probe/commit/SAT-solve/CEGIS-iteration — with attributes
(design digest, strategy, cache hit/miss, clauses learned, conflicts)
attached where the work happens.  Two consumers:

* :meth:`Tracer.write_chrome_trace` exports Chrome ``trace_event``
  JSON (``"X"`` complete events) loadable in Perfetto or
  ``chrome://tracing``;
* :func:`render_span_tree` (and :func:`render_chrome_tree` for a
  trace file read back from disk) prints the same hierarchy as a
  human-readable tree for ``python -m repro report``.

Arming is thread-local and cooperative, mirroring
:mod:`repro.resilience.budget`: instrumented code calls
:func:`maybe_span`, which is a single thread-local attribute read
returning a shared no-op context manager when no tracer is active —
the disarmed path stays bit-identical and effectively free.  The
pipeline's stage boundaries are captured without touching stage code
at all via :class:`TracingHooks`, an adapter over the existing
``PipelineHooks`` observer protocol.

Durations come from :func:`time.perf_counter_ns` (monotonic); wall
timestamps are recorded only at span boundaries, so exported traces
can never show negative or clock-skewed durations.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

from repro.errors import DeadlineExceeded

__all__ = [
    "Span",
    "Tracer",
    "TracingHooks",
    "active_tracer",
    "maybe_span",
    "render_chrome_tree",
    "render_span_tree",
    "set_active_tracer",
    "tracer_scope",
]

#: span statuses — ``open`` only appears when exporting a live tracer
OK = "ok"
ERROR = "error"
TIMEOUT = "timeout"
OPEN = "open"


class Span:
    """One timed node in the trace tree."""

    __slots__ = ("name", "category", "attrs", "status", "start_ns",
                 "end_ns", "wall_start", "tid", "children")

    def __init__(self, name: str, category: str, attrs: dict,
                 tid: int) -> None:
        self.name = name
        self.category = category
        self.attrs = attrs
        self.status: str = OPEN
        self.start_ns = time.perf_counter_ns()
        self.end_ns: int | None = None
        #: wall clock at the span boundary only — never used for math
        self.wall_start = time.time()
        self.tid = tid
        self.children: list[Span] = []

    @property
    def duration_s(self) -> float:
        end = self.end_ns if self.end_ns is not None \
            else time.perf_counter_ns()
        return (end - self.start_ns) / 1e9

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "status": self.status,
            "duration_s": round(self.duration_s, 6),
            "wall_start": round(self.wall_start, 3),
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }


def _status_for(etype) -> str:
    if etype is None:
        return OK
    if issubclass(etype, DeadlineExceeded):
        return TIMEOUT
    return ERROR


class _SpanScope:
    """Context manager pairing :meth:`Tracer.begin`/:meth:`Tracer.end`."""

    __slots__ = ("_tracer", "_name", "_category", "_attrs", "span")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attrs = attrs
        self.span: Span | None = None

    def __enter__(self) -> Span:
        self.span = self._tracer.begin(
            self._name, category=self._category, **self._attrs
        )
        return self.span

    def __exit__(self, etype, exc, tb) -> bool:
        self._tracer.end(self.span, status=_status_for(etype))
        return False


class _NullScope:
    """Shared no-op returned by :func:`maybe_span` when disarmed."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, etype, exc, tb) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class Tracer:
    """Collects a span tree; safe for concurrent threads.

    Each thread keeps its own open-span stack; the finished tree and
    root list are shared under a lock.  ``listener``, when given, is
    called as ``listener(phase, span)`` with phase ``"start"``,
    ``"end"``, or ``"instant"`` (zero-duration point events) — the
    service worker uses it to stream span events over the daemon's
    ``events`` verb while the run is still in flight.
    """

    def __init__(self, listener=None) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self.roots: list[Span] = []
        self.listener = listener
        self.epoch_ns = time.perf_counter_ns()
        self.wall_epoch = time.time()
        #: free-form payloads exported under ``otherData`` (profiles)
        self.extras: dict = {}

    # -- recording -----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def begin(self, name: str, category: str = "pipeline",
              **attrs) -> Span:
        span = Span(name, category, attrs, threading.get_ident())
        stack = self._stack()
        with self._lock:
            if stack:
                stack[-1].children.append(span)
            else:
                self.roots.append(span)
        stack.append(span)
        if self.listener is not None:
            self.listener("start", span)
        return span

    def end(self, span: Span | None = None, status: str = OK,
            **attrs) -> None:
        """Close ``span`` (default: the innermost open one).

        If inner spans were left open above ``span`` — an abandoned
        generator, an exception path that skipped a scope — they are
        closed with the same status so the stack never wedges.
        """
        stack = self._stack()
        while stack:
            top = stack.pop()
            top.end_ns = time.perf_counter_ns()
            if top is span or span is None:
                top.status = status
                top.attrs.update(attrs)
                if self.listener is not None:
                    self.listener("end", top)
                return
            top.status = status
            if self.listener is not None:
                self.listener("end", top)

    def span(self, name: str, category: str = "pipeline",
             **attrs) -> _SpanScope:
        return _SpanScope(self, name, category, attrs)

    def instant(self, name: str, category: str = "pipeline",
                **attrs) -> Span:
        """A zero-duration point event (e.g. a commit)."""
        span = Span(name, category, attrs, threading.get_ident())
        span.end_ns = span.start_ns
        span.status = OK
        stack = self._stack()
        with self._lock:
            if stack:
                stack[-1].children.append(span)
            else:
                self.roots.append(span)
        if self.listener is not None:
            self.listener("instant", span)
        return span

    def current(self) -> Span | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def set_attrs(self, **attrs) -> None:
        span = self.current()
        if span is not None:
            span.attrs.update(attrs)

    def unwind(self, status: str) -> None:
        """Close every span still open on this thread (error paths)."""
        stack = self._stack()
        while stack:
            self.end(stack[-1], status=status)

    # -- export --------------------------------------------------------

    def _events(self) -> list[dict]:
        pid = os.getpid()
        events: list[dict] = []

        def emit(span: Span) -> None:
            end_ns = span.end_ns if span.end_ns is not None \
                else time.perf_counter_ns()
            args = dict(span.attrs)
            args["status"] = span.status
            event = {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": (span.start_ns - self.epoch_ns) / 1000.0,
                "dur": (end_ns - span.start_ns) / 1000.0,
                "pid": pid,
                "tid": span.tid,
                "args": args,
            }
            events.append(event)
            for child in span.children:
                emit(child)

        with self._lock:
            for root in self.roots:
                emit(root)
        return events

    def to_chrome_trace(self) -> dict:
        """The full trace as a Chrome ``trace_event`` JSON object."""
        other = {"wall_epoch": round(self.wall_epoch, 3)}
        other.update(self.extras)
        return {
            "traceEvents": self._events(),
            "displayTimeUnit": "ms",
            "otherData": other,
        }

    def write_chrome_trace(self, path: str) -> None:
        payload = json.dumps(self.to_chrome_trace(), indent=1,
                             sort_keys=True)
        if path == "-":
            sys.stdout.write(payload + "\n")
            return
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")


# -- thread-local arming ----------------------------------------------

_ACTIVE = threading.local()


def set_active_tracer(tracer: Tracer | None) -> None:
    _ACTIVE.tracer = tracer


def active_tracer() -> Tracer | None:
    return getattr(_ACTIVE, "tracer", None)


class tracer_scope:
    """``with tracer_scope(tracer):`` — arm for the dynamic extent."""

    __slots__ = ("_tracer", "_prev")

    def __init__(self, tracer: Tracer | None) -> None:
        self._tracer = tracer
        self._prev: Tracer | None = None

    def __enter__(self) -> Tracer | None:
        self._prev = getattr(_ACTIVE, "tracer", None)
        _ACTIVE.tracer = self._tracer
        return self._tracer

    def __exit__(self, etype, exc, tb) -> bool:
        _ACTIVE.tracer = self._prev
        return False


def maybe_span(name: str, category: str = "pipeline", **attrs):
    """A span scope when a tracer is armed, a shared no-op otherwise.

    The disarmed cost is one thread-local attribute read — instrumented
    hot-ish paths (localizer probes, CEGIS iterations, SAT solves) stay
    effectively free by default.
    """
    tracer = getattr(_ACTIVE, "tracer", None)
    if tracer is None:
        return _NULL_SCOPE
    return _SpanScope(tracer, name, category, attrs)


def maybe_instant(name: str, category: str = "pipeline", **attrs) -> None:
    tracer = getattr(_ACTIVE, "tracer", None)
    if tracer is not None:
        tracer.instant(name, category=category, **attrs)


def maybe_set_attrs(**attrs) -> None:
    tracer = getattr(_ACTIVE, "tracer", None)
    if tracer is not None:
        tracer.set_attrs(**attrs)


# -- PipelineHooks adapter --------------------------------------------


class TracingHooks:
    """Adapts the ``PipelineHooks`` observer protocol onto a tracer.

    Structural duck-type of :class:`repro.api.pipeline.PipelineHooks`
    (not a subclass, to keep :mod:`repro.obs` import-cycle-free) that
    opens a span per stage and records probes/commits as point events,
    delegating every callback to ``inner`` so user hooks keep firing.

    ``on_stage_end`` fires inside ``run_timed_stage``'s ``finally``, so
    during exception unwind :func:`sys.exc_info` still names the
    in-flight exception — the stage span closes with status
    ``"timeout"`` for a tripped cooperative deadline and ``"error"``
    for anything else, with no pipeline signature changes.
    """

    def __init__(self, tracer: Tracer, inner=None) -> None:
        self.tracer = tracer
        self.inner = inner

    def on_stage_start(self, stage, ctx) -> None:
        self.tracer.begin(stage.name, category="stage")
        if self.inner is not None:
            self.inner.on_stage_start(stage, ctx)

    def on_stage_end(self, stage, ctx, seconds: float) -> None:
        try:
            if self.inner is not None:
                self.inner.on_stage_end(stage, ctx, seconds)
        finally:
            self.tracer.end(status=_status_for(sys.exc_info()[0]))

    def on_probe(self, ctx, step) -> None:
        if self.inner is not None:
            self.inner.on_probe(ctx, step)

    def on_commit(self, ctx, record) -> None:
        self.tracer.instant(
            "commit", category="route",
            description=record.description,
            cache_hit="(cached config)" in (record.detail or ""),
        )
        if self.inner is not None:
            self.inner.on_commit(ctx, record)


# -- rendering --------------------------------------------------------


def _render_node(lines: list[str], node: dict, prefix: str,
                 last: bool, root: bool) -> None:
    attrs = " ".join(
        f"{k}={v}" for k, v in sorted(node.get("attrs", {}).items())
    )
    # quantise to whole microseconds so the live render and the render
    # rebuilt from an exported trace file format identical numbers
    dur_ms = round(node.get("duration_s", 0.0), 6) * 1e3
    label = (f"{node['name']} [{node.get('status', '?')}] "
             f"{dur_ms:.1f}ms")
    if attrs:
        label += f"  {attrs}"
    if root:
        lines.append(label)
        child_prefix = ""
    else:
        lines.append(prefix + ("└─ " if last else "├─ ") + label)
        child_prefix = prefix + ("   " if last else "│  ")
    children = node.get("children", [])
    for i, child in enumerate(children):
        _render_node(lines, child, child_prefix,
                     i == len(children) - 1, root=False)


def render_span_tree(tracer: Tracer) -> str:
    """The tracer's span tree, one indented line per span."""
    lines: list[str] = []
    with tracer._lock:
        roots = [root.to_dict() for root in tracer.roots]
    for root in roots:
        _render_node(lines, root, "", True, root=True)
    return "\n".join(lines)


def render_chrome_tree(trace: dict) -> str:
    """Rebuild and render the span tree from a Chrome trace file.

    ``"X"`` events carry no explicit parentage — nesting is recovered
    per ``(pid, tid)`` lane by timestamp/duration containment, exactly
    how trace viewers draw them.
    """
    events = [e for e in trace.get("traceEvents", [])
              if e.get("ph") == "X"]
    lanes: dict[tuple, list[dict]] = {}
    for event in events:
        lanes.setdefault((event.get("pid"), event.get("tid")),
                         []).append(event)
    roots: list[dict] = []
    for key in sorted(lanes, key=str):
        lane = sorted(lanes[key],
                      key=lambda e: (e.get("ts", 0.0), -e.get("dur", 0.0)))
        stack: list[tuple[float, dict]] = []  # (end_ts, node)
        for event in lane:
            ts = float(event.get("ts", 0.0))
            dur = float(event.get("dur", 0.0))
            args = dict(event.get("args", {}))
            status = args.pop("status", "?")
            node = {
                "name": event.get("name", "?"),
                "status": status,
                "duration_s": dur / 1e6,
                "attrs": args,
                "children": [],
            }
            while stack and ts >= stack[-1][0] - 1e-9:
                stack.pop()
            if stack:
                stack[-1][1]["children"].append(node)
            else:
                roots.append(node)
            stack.append((ts + dur, node))
    lines: list[str] = []
    for root in roots:
        _render_node(lines, root, "", True, root=True)
    return "\n".join(lines)
